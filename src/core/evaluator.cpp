#include "core/evaluator.hpp"

#include <chrono>
#include <optional>
#include <utility>

#include "engine/pipeline.hpp"

namespace hsd::core {

namespace {

using LayerIndex = std::vector<std::pair<LayerId, const GridIndex*>>;

/// A candidate clip in flight through the evaluation stages.
struct EvalItem {
  ClipWindow win;
  Clip clip;
  svm::FeatureVector coreFeat;
};

/// The Fig. 3 right-half scoring stages, decomposed so each step is
/// separately timed and batched. Together they compute exactly
/// Detector::evaluateClip (same feature builds, same kernel order, same
/// thresholds), so reports are identical to the monolithic path.
struct EvalStages {
  engine::Stage<ClipWindow, EvalItem> clip;
  engine::Stage<EvalItem, EvalItem> features;
  engine::Stage<EvalItem, EvalItem> kernels;
  engine::Stage<EvalItem, ClipWindow> feedback;
};

EvalStages makeEvalStages(const Detector& det, const LayerIndex& layers,
                          const EvalParams& p) {
  EvalStages s;
  s.clip = engine::mapStage<ClipWindow>(
      "eval/clip", [&layers](const ClipWindow& w) {
        return EvalItem{w, extractClip(layers, w), {}};
      });
  s.features = engine::mapStage<EvalItem>(
      "eval/features", [&det](EvalItem it) {
        it.coreFeat = buildFeatureVector(
            CorePattern::fromCore(it.clip, det.params.layer),
            det.params.features);
        return it;
      });
  s.kernels = engine::filterMapStage<EvalItem>(
      "eval/svm",
      [&det, bias = p.decisionBias](const EvalItem& it)
          -> std::optional<EvalItem> {
        for (const KernelEntry& k : det.kernels)
          if (k.model.decision(k.scaler.transform(it.coreFeat)) > bias)
            return it;
        return std::nullopt;
      });
  s.feedback = engine::filterMapStage<EvalItem>(
      "eval/feedback",
      [&det, useFeedback = p.useFeedback](const EvalItem& it)
          -> std::optional<ClipWindow> {
        if (useFeedback && det.hasFeedback) {
          const svm::FeatureVector fb = buildFeatureVector(
              CorePattern::fromClip(it.clip, det.params.layer),
              det.params.feedbackFeatures);
          if (det.feedbackModel.predict(det.feedbackScaler.transform(fb)) < 0)
            return std::nullopt;  // reclaimed by the ambit-aware kernel
        }
        return it.win;
      });
  return s;
}

EvalResult finishEval(const GridIndex& index, std::vector<ClipWindow> hits,
                      const EvalParams& p, engine::RunContext& ctx,
                      EvalResult res,
                      std::chrono::steady_clock::time_point t0) {
  res.flaggedBeforeRemoval = hits.size();
  res.reported = p.useRemoval
                     ? removeRedundantClips(hits, index, p.removal, ctx)
                     : std::move(hits);
  res.evalSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

}  // namespace

EvalResult evaluateCandidates(const Detector& det, const GridIndex& index,
                              const std::vector<ClipWindow>& candidates,
                              const EvalParams& p, engine::RunContext& ctx) {
  const auto t0 = std::chrono::steady_clock::now();
  EvalResult res;
  res.candidateClips = candidates.size();

  const LayerIndex layers{{det.params.layer, &index}};
  EvalStages s = makeEvalStages(det, layers, p);
  std::vector<ClipWindow> hits = engine::runPipeline(
      ctx, candidates, s.clip, s.features, s.kernels, s.feedback);
  return finishEval(index, std::move(hits), p, ctx, std::move(res), t0);
}

EvalResult evaluateLayout(const Detector& det, const Layout& layout,
                          const EvalParams& p, engine::RunContext& ctx) {
  const auto t0 = std::chrono::steady_clock::now();
  const Layer* l = layout.findLayer(det.params.layer);
  if (l == nullptr || l->empty()) return {};
  const GridIndex index(l->rects(), p.extract.clip.clipSide);

  EvalResult res;
  const LayerIndex layers{{det.params.layer, &index}};

  // One streaming pipeline from anchors to hits: extraction chains
  // straight into scoring, so the candidate list never materializes.
  auto screen = engine::filterMapStage<Point>(
      "extract/screen",
      [&index, &p](const Point& a) -> std::optional<ClipWindow> {
        const ClipWindow win = anchorWindow(a, p.extract.clip);
        if (!passesScreen(index, win, p.extract)) return std::nullopt;
        return win;
      });
  // Counter stage: tallies extraction survivors as they stream past.
  engine::Stage<ClipWindow, ClipWindow> tap{
      "extract/candidates",
      [&res](engine::RunContext&, std::vector<ClipWindow>&& b) {
        res.candidateClips += b.size();
        return std::move(b);
      }};
  EvalStages s = makeEvalStages(det, layers, p);
  std::vector<ClipWindow> hits = engine::runPipeline(
      ctx, candidateAnchors(index, p.extract.clip.coreSide), screen, tap,
      s.clip, s.features, s.kernels, s.feedback);
  return finishEval(index, std::move(hits), p, ctx, std::move(res), t0);
}

std::vector<RankedReport> rankReports(const Detector& det,
                                      const GridIndex& index,
                                      const std::vector<ClipWindow>& reports,
                                      engine::RunContext& ctx) {
  const LayerIndex layers{{det.params.layer, &index}};
  auto rank = engine::mapStage<ClipWindow>(
      "eval/rank", [&det, &layers](const ClipWindow& w) {
        const Clip clip = extractClip(layers, w);
        return RankedReport{
            w, det.hotspotProbability(
                   CorePattern::fromCore(clip, det.params.layer))};
      });
  std::vector<RankedReport> out = engine::runPipeline(ctx, reports, rank);
  std::sort(out.begin(), out.end(),
            [](const RankedReport& a, const RankedReport& b) {
              return a.probability > b.probability;
            });
  return out;
}

EvalResult evaluateLayoutWindowScan(const Detector& det, const Layout& layout,
                                    const EvalParams& p,
                                    engine::RunContext& ctx, double overlap) {
  const Layer* l = layout.findLayer(det.params.layer);
  if (l == nullptr || l->empty()) return {};
  const GridIndex index(l->rects(), p.extract.clip.clipSide);
  std::vector<ClipWindow> windows =
      windowScanClips(layout, det.params.layer, p.extract.clip, overlap);
  // Skip geometry-free windows (they can never be flagged) but keep the
  // full-scan structure otherwise.
  std::erase_if(windows, [&index](const ClipWindow& w) {
    return !index.anyOverlap(w.clip);
  });
  return evaluateCandidates(det, index, windows, p, ctx);
}

EvalResult evaluateLayout(const Detector& det, const Layout& layout,
                          const EvalParams& p) {
  engine::RunContext ctx(p.threads);
  return evaluateLayout(det, layout, p, ctx);
}

EvalResult evaluateCandidates(const Detector& det, const GridIndex& index,
                              const std::vector<ClipWindow>& candidates,
                              const EvalParams& p) {
  engine::RunContext ctx(p.threads);
  return evaluateCandidates(det, index, candidates, p, ctx);
}

std::vector<RankedReport> rankReports(const Detector& det,
                                      const GridIndex& index,
                                      const std::vector<ClipWindow>& reports) {
  engine::RunContext ctx(1);
  return rankReports(det, index, reports, ctx);
}

EvalResult evaluateLayoutWindowScan(const Detector& det, const Layout& layout,
                                    const EvalParams& p, double overlap) {
  engine::RunContext ctx(p.threads);
  return evaluateLayoutWindowScan(det, layout, p, ctx, overlap);
}

}  // namespace hsd::core
