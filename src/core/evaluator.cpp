#include "core/evaluator.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "engine/arena.hpp"
#include "engine/cache.hpp"
#include "engine/pipeline.hpp"
#include "geom/hashing.hpp"
#include "obs/log.hpp"
#include "obs/model_stats.hpp"
#include "obs/trace_id.hpp"

namespace hsd::core {

namespace {

using LayerIndex = std::vector<std::pair<LayerId, const GridIndex*>>;

/// Stage-name hash of the per-window verdict cache (the memoized output of
/// the eval/features -> eval/svm -> eval/feedback chain).
constexpr std::uint64_t kVerdictStage = hashString("eval/verdict");

/// Content hash of a clip: window dimensions plus the window-local (i.e.
/// translation-invariant) geometry of every layer. Two windows anywhere on
/// the layout with identical content share this hash — and therefore one
/// cached verdict.
std::uint64_t clipContentHash(const Clip& clip) {
  const ClipWindow& w = clip.window();
  std::uint64_t h = hashCombine(hashCoord(w.clip.width()),
                                hashCoord(w.clip.height()));
  for (const LayerId id : clip.layerIds()) {
    h = hashCombine(h, hashMix(id));
    h = hashCombine(h, hashRectsUnordered(clip.localClipRects(id)));
  }
  return h;
}

/// Config component of verdict keys: everything besides window content
/// that can change a verdict — the whole trained detector, the decision
/// bias, and the feedback toggle.
std::uint64_t verdictConfig(const Detector& det, const EvalParams& p) {
  std::uint64_t h = hashString("eval/verdict/v1");
  h = hashCombine(h, det.fingerprint());
  h = hashCombine(h, hashDouble(p.decisionBias));
  h = hashCombine(h, hashMix(p.useFeedback ? 1 : 0));
  return h;
}

/// A candidate clip in flight through the evaluation stages.
struct EvalItem {
  ClipWindow win;
  Clip clip;
  svm::FeatureVector coreFeat;
  engine::CacheKey key;       ///< verdict cache key (set when caching)
  std::int8_t verdict = -1;   ///< -1 unknown, 0/1 cached verdict
};

/// The Fig. 3 right-half scoring stages, decomposed so each step is
/// separately timed and batched. Together they compute exactly
/// Detector::evaluateClip (same feature builds, same kernel order, same
/// thresholds), so reports are identical to the monolithic path. With a
/// StageCache attached to the context, the clip stage looks up the cached
/// verdict per window and the downstream stages skip all computation for
/// hits — warm runs stay byte-identical to cold runs because a verdict is
/// a pure function of its key.
struct EvalStages {
  engine::Stage<ClipWindow, EvalItem> clip;
  engine::Stage<EvalItem, EvalItem> features;
  engine::Stage<EvalItem, EvalItem> kernels;
  engine::Stage<EvalItem, ClipWindow> feedback;
};

/// `prefix` namespaces the stage/cache *stats* names ("tile<k>/" in tiled
/// runs, "" monolithic). The verdict cache key keeps the canonical
/// kVerdictStage hash either way — content hashes are translation
/// invariant, so tiled and monolithic runs (and different tiles) share
/// one verdict cache.
EvalStages makeEvalStages(const Detector& det, const LayerIndex& layers,
                          const EvalParams& p,
                          const std::string& prefix = {}) {
  EvalStages s;
  const std::uint64_t cfg = verdictConfig(det, p);
  const std::string cacheName = prefix + "eval/verdict";
  s.clip = engine::Stage<ClipWindow, EvalItem>{
      prefix + "eval/clip",
      [&layers, cfg, cacheName](engine::RunContext& ctx,
                                std::vector<ClipWindow>&& in) {
        engine::StageCache* const cache = ctx.cache();
        std::vector<EvalItem> out(in.size());
        std::atomic<std::size_t> hits{0};
        std::atomic<std::size_t> misses{0};
        ctx.parallelFor(in.size(), [&](std::size_t i) {
          EvalItem& it = out[i];
          it.win = in[i];
          it.clip = extractClip(layers, in[i]);
          if (cache == nullptr) return;
          it.key = engine::CacheKey{kVerdictStage, cfg,
                                    clipContentHash(it.clip)};
          if (const std::optional<bool> v = cache->find<bool>(it.key)) {
            hits.fetch_add(1, std::memory_order_relaxed);
            it.verdict = *v ? 1 : 0;
          } else {
            misses.fetch_add(1, std::memory_order_relaxed);
          }
        });
        if (cache != nullptr)
          ctx.stats().recordCache(cacheName, hits, misses, 0);
        return out;
      }};
  s.features = engine::Stage<EvalItem, EvalItem>{
      prefix + "eval/features",
      [&det](engine::RunContext& ctx, std::vector<EvalItem>&& in) {
        ctx.parallelFor(in.size(), [&](std::size_t i) {
          if (in[i].verdict >= 0) return;  // cached: nothing to compute
          in[i].coreFeat = buildFeatureVector(
              CorePattern::fromCore(in[i].clip, det.params.layer),
              det.params.features);
        });
        return std::move(in);
      }};
  s.kernels = engine::Stage<EvalItem, EvalItem>{
      prefix + "eval/svm",
      [&det, bias = p.decisionBias, cacheName](engine::RunContext& ctx,
                                               std::vector<EvalItem>&& in) {
        engine::StageCache* const cache = ctx.cache();
        obs::ModelStatsRecorder* const ms = ctx.modelStats();
        const Coord half = det.params.clip.coreSide / 2;
        std::vector<char> keep(in.size(), 0);
        std::atomic<std::size_t> evictions{0};
        ctx.parallelFor(in.size(), [&](std::size_t i) {
          EvalItem& it = in[i];
          if (it.verdict >= 0) {
            keep[i] = it.verdict == 1;
            return;
          }
          bool flagged = false;
          {
            // Scale + score through arena scratch: no per-clip heap
            // traffic in the steady state (the span hands the scaled
            // vector straight to the packed decision kernel).
            engine::ArenaScope scope(engine::threadScratch());
            // Margin attribution: a flagged clip belongs to its first
            // flagging kernel (the loop stops there regardless of the
            // recorder, so reports stay byte-identical); an unflagged
            // clip to the kernel with the largest decision value — the
            // one that came closest to flagging it.
            std::size_t bestK = 0;
            double bestD = -std::numeric_limits<double>::infinity();
            std::size_t ki = 0;
            for (const KernelEntry& k : det.kernels) {
              const std::span<double> x =
                  scope.arena().allocSpan<double>(k.scaler.dim());
              k.scaler.transformInto(it.coreFeat, x.data());
              const double d = k.model.decisionFrom(x);
              if (d > bias) {
                flagged = true;
                bestK = ki;
                bestD = d;
                break;
              }
              if (ms != nullptr && (ki == 0 || d > bestD)) {
                bestK = ki;
                bestD = d;
              }
              ++ki;
            }
            if (ms != nullptr && !det.kernels.empty()) {
              ms->record(bestK, bestD, flagged);
              if (ms->shouldCapture(bestD - bias))
                ms->capture(bestK, bestD, it.win.core.lo.x + half,
                            it.win.core.lo.y + half, clipContentHash(it.clip));
            }
          }
          if (!flagged && cache != nullptr) {
            // The final verdict is already known: the feedback kernel can
            // only reclaim *flagged* clips, never promote unflagged ones.
            evictions.fetch_add(cache->insert(it.key, false),
                                std::memory_order_relaxed);
          }
          keep[i] = flagged;  // verdict stays -1: feedback decides
        });
        if (cache != nullptr)
          ctx.stats().recordCache(cacheName, 0, 0, evictions);
        std::vector<EvalItem> out;
        out.reserve(in.size());
        for (std::size_t i = 0; i < in.size(); ++i)
          if (keep[i]) out.push_back(std::move(in[i]));
        return out;
      }};
  s.feedback = engine::Stage<EvalItem, ClipWindow>{
      prefix + "eval/feedback",
      [&det, useFeedback = p.useFeedback, cacheName](
          engine::RunContext& ctx, std::vector<EvalItem>&& in) {
        engine::StageCache* const cache = ctx.cache();
        obs::ModelStatsRecorder* const ms = ctx.modelStats();
        const Coord half = det.params.clip.coreSide / 2;
        std::vector<std::optional<ClipWindow>> tmp(in.size());
        std::atomic<std::size_t> evictions{0};
        ctx.parallelFor(in.size(), [&](std::size_t i) {
          EvalItem& it = in[i];
          if (it.verdict >= 0) {
            if (it.verdict == 1) tmp[i] = it.win;
            return;
          }
          bool hot = true;
          if (useFeedback && det.hasFeedback) {
            const svm::FeatureVector fb = buildFeatureVector(
                CorePattern::fromClip(it.clip, det.params.layer),
                det.params.feedbackFeatures);
            engine::ArenaScope scope(engine::threadScratch());
            const std::span<double> x =
                scope.arena().allocSpan<double>(det.feedbackScaler.dim());
            det.feedbackScaler.transformInto(fb, x.data());
            // decisionFrom(x) > 0 is exactly predictFrom(x) == 1 (see
            // svm.cpp); the raw margin additionally feeds the recorder's
            // feedback pseudo-cluster.
            const double d = det.feedbackModel.decisionFrom(x);
            if (!(d > 0.0))
              hot = false;  // reclaimed by the ambit-aware kernel
            if (ms != nullptr) {
              ms->record(ms->feedbackSlot(), d, hot);
              if (ms->shouldCapture(d))
                ms->capture(ms->feedbackSlot(), d, it.win.core.lo.x + half,
                            it.win.core.lo.y + half, clipContentHash(it.clip));
            }
          }
          if (cache != nullptr)
            evictions.fetch_add(cache->insert(it.key, hot),
                                std::memory_order_relaxed);
          if (hot) tmp[i] = it.win;
        });
        if (cache != nullptr)
          ctx.stats().recordCache(cacheName, 0, 0, evictions);
        std::vector<ClipWindow> out;
        out.reserve(in.size());
        for (std::optional<ClipWindow>& o : tmp)
          if (o.has_value()) out.push_back(*o);
        return out;
      }};
  return s;
}

EvalResult finishEval(const GridIndex& index, std::vector<ClipWindow> hits,
                      const EvalParams& p, engine::RunContext& ctx,
                      EvalResult res,
                      std::chrono::steady_clock::time_point t0) {
  // Removal is a serial epilogue; honor a cancel/deadline that landed
  // during the last pipeline batch before starting it.
  ctx.throwIfCancelled();
  res.flaggedBeforeRemoval = hits.size();
  res.reported = p.useRemoval
                     ? removeRedundantClips(hits, index, p.removal, ctx)
                     : std::move(hits);
  res.evalSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

}  // namespace

std::uint64_t EvalParams::fingerprint() const {
  std::uint64_t h = hashString("EvalParams/v1");
  h = hashCombine(h, extract.fingerprint());
  h = hashCombine(h, removal.fingerprint());
  h = hashCombine(h, hashDouble(decisionBias));
  h = hashCombine(h, hashMix((useFeedback ? 1u : 0u) |
                             (useRemoval ? 2u : 0u)));
  return h;
}

EvalResult evaluateCandidates(const Detector& det, const GridIndex& index,
                              const std::vector<ClipWindow>& candidates,
                              const EvalParams& p, engine::RunContext& ctx) {
  const auto t0 = std::chrono::steady_clock::now();
  ctx.throwIfCancelled();
  EvalResult res;
  res.candidateClips = candidates.size();

  const LayerIndex layers{{det.params.layer, &index}};
  EvalStages s = makeEvalStages(det, layers, p);
  std::vector<ClipWindow> hits = engine::runPipeline(
      ctx, candidates, s.clip, s.features, s.kernels, s.feedback);
  return finishEval(index, std::move(hits), p, ctx, std::move(res), t0);
}

TiledLayout prepareTiledLayout(const Layout& layout, LayerId layer,
                               const EvalParams& p) {
  TiledLayout t;
  const Layer* l = layout.findLayer(layer);
  std::vector<Rect> rects =
      l == nullptr ? std::vector<Rect>{} : l->rects();
  const std::optional<Rect> bb = boundingBox(rects.begin(), rects.end());
  t.plan =
      engine::TilePlan::make(bb.value_or(Rect{}), p.tiling, p.extract.clip);
  t.index = GridIndex(std::move(rects), p.extract.clip.clipSide);

  // The monolithic anchor stream, enumerated exactly once: the sequence
  // number is an anchor's position in it, and the merge sorts hits back
  // into this order. Partitioning keys on the ownership rule, so every
  // anchor lands in exactly one tile's work list.
  const std::vector<Point> anchors =
      candidateAnchors(t.index, p.extract.clip.coreSide);
  t.anchorCount = anchors.size();
  // Ordered map keyed by tile id: memory stays proportional to non-empty
  // tiles (a tiny tileSize over a big layout implies a huge, mostly
  // empty grid) and work comes out in tile-id order.
  std::map<std::size_t, std::vector<std::pair<std::uint64_t, Point>>> buckets;
  for (std::size_t i = 0; i < anchors.size(); ++i)
    buckets[t.plan.ownerOf(anchors[i])].emplace_back(i, anchors[i]);
  t.work.reserve(buckets.size());
  for (auto& [id, owned] : buckets)
    t.work.push_back({id, std::move(owned)});
  return t;
}

void declareTileStages(engine::EngineStats& stats, const TiledLayout& tiled,
                       bool withCache) {
  static const char* const kStages[] = {
      "extract/screen", "extract/candidates", "eval/clip",
      "eval/features",  "eval/svm",           "eval/feedback"};
  for (const TiledLayout::Work& w : tiled.work) {
    const std::string prefix = "tile" + std::to_string(w.tileId) + "/";
    for (const char* const s : kStages) stats.declare(prefix + s);
    if (withCache) {
      stats.declareCache(prefix + "extract/screen");
      stats.declareCache(prefix + "eval/verdict");
    }
  }
}

TileEvalResult evaluateTile(const Detector& det, const TiledLayout& tiled,
                            std::size_t workIndex, const EvalParams& p,
                            engine::RunContext& ctx) {
  const TiledLayout::Work& w = tiled.work[workIndex];
  const engine::TileSpec spec = tiled.plan.tile(w.tileId);
  ctx.throwIfCancelled();
  // Re-install the context's request id: during serve-side tile fan-out
  // this runs on a *borrowed* helper context's pool workers, whose
  // threads have no ambient id of their own.
  const obs::ScopedTraceId traceScope(
      ctx.traceId().valid() ? ctx.traceId() : obs::currentTraceId());
  ctx.log(obs::LogLevel::kDebug, "core", "tile eval start",
          {"tile", w.tileId}, {"anchors", w.anchors.size()});

  // Local geometry slice: every *unclipped* rect overlapping the
  // halo-expanded tile, in global relative order. halo >= minTileHalo
  // guarantees any clip window of an owned anchor lies inside the
  // expanded region, so each window's rect set — and hence its screen
  // verdict, content hash, features and kernel scores, all of which are
  // query-order independent — equals the monolithic run's.
  std::vector<std::size_t> ids = tiled.index.query(spec.expanded);
  std::sort(ids.begin(), ids.end());
  std::vector<Rect> slice;
  slice.reserve(ids.size());
  for (const std::size_t i : ids) slice.push_back(tiled.index.rects()[i]);
  const GridIndex local(std::move(slice), p.extract.clip.clipSide);

  const std::string prefix = "tile" + std::to_string(w.tileId) + "/";
  TileEvalResult out;
  engine::Stage<Point, ClipWindow> screen =
      screenStage(local, p.extract, prefix + "extract/screen");
  engine::Stage<ClipWindow, ClipWindow> tap{
      prefix + "extract/candidates",
      [&out](engine::RunContext&, std::vector<ClipWindow>&& b) {
        out.candidateClips += b.size();
        return std::move(b);
      }};
  const LayerIndex layers{{det.params.layer, &local}};
  EvalStages s = makeEvalStages(det, layers, p, prefix);

  std::vector<Point> anchors;
  anchors.reserve(w.anchors.size());
  for (const auto& [seq, a] : w.anchors) anchors.push_back(a);
  const std::vector<ClipWindow> hits =
      engine::runPipeline(ctx, std::move(anchors), screen, tap, s.clip,
                          s.features, s.kernels, s.feedback);

  // Tag each hit with its global sequence number via the anchor inverse
  // of anchorWindow: core.lo + coreSide/2 (exact in integer dbu).
  std::unordered_map<Point, std::uint64_t> seqOf;
  seqOf.reserve(w.anchors.size());
  for (const auto& [seq, a] : w.anchors) seqOf.emplace(a, seq);
  const Coord half = p.extract.clip.coreSide / 2;
  out.hits.reserve(hits.size());
  for (const ClipWindow& win : hits) {
    const Point a{win.core.lo.x + half, win.core.lo.y + half};
    const auto it = seqOf.find(a);
    if (it == seqOf.end())
      throw std::logic_error(
          "evaluateTile: hit window does not invert to an owned anchor");
    out.hits.push_back({it->second, a, win});
  }
  ctx.log(obs::LogLevel::kDebug, "core", "tile eval done", {"tile", w.tileId},
          {"hits", out.hits.size()});
  return out;
}

EvalResult finishTiledEval(const TiledLayout& tiled,
                           std::vector<TileEvalResult>&& tiles,
                           const EvalParams& p, engine::RunContext& ctx,
                           std::chrono::steady_clock::time_point t0) {
  EvalResult res;
  engine::ReportMerger merger(tiled.plan);
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    res.candidateClips += tiles[i].candidateClips;
    merger.add(tiled.work[i].tileId, std::move(tiles[i].hits));
  }
  // Removal runs *globally* over the merged, monolithic-order hit stream
  // against the global index: it is order-dependent (sequential prune)
  // and seam-crossing (gravity shifts, covering merges), so running it
  // per tile would change reports.
  return finishEval(tiled.index, merger.finish(), p, ctx, std::move(res),
                    t0);
}

namespace {

EvalResult evaluateLayoutTiled(const Detector& det, const Layout& layout,
                               const EvalParams& p,
                               engine::RunContext& ctx) {
  const auto t0 = std::chrono::steady_clock::now();
  const Layer* l = layout.findLayer(det.params.layer);
  if (l == nullptr || l->empty()) return {};
  ctx.throwIfCancelled();
  const TiledLayout tiled = prepareTiledLayout(layout, det.params.layer, p);
  declareTileStages(ctx.stats(), tiled, ctx.cache() != nullptr);
  ctx.log(obs::LogLevel::kInfo, "core", "tiled eval start",
          {"tiles", tiled.work.size()}, {"anchors", tiled.anchorCount});

  // Coarse tile-grain fan-out: each worker claims a tile and runs its
  // whole stage chain (nested stage parallelFor runs inline), so
  // different tiles sit in different stages concurrently — extraction on
  // one tile overlaps scoring on another. tileThreads caps the fan-out
  // by chunking consecutive tiles.
  const std::size_t n = tiled.work.size();
  std::vector<TileEvalResult> tiles(n);
  std::size_t grain = 1;
  if (p.tiling.tileThreads > 0 && n > p.tiling.tileThreads)
    grain = (n + p.tiling.tileThreads - 1) / p.tiling.tileThreads;
  ctx.parallelFor(
      n, [&](std::size_t i) { tiles[i] = evaluateTile(det, tiled, i, p, ctx); },
      grain);
  EvalResult res = finishTiledEval(tiled, std::move(tiles), p, ctx, t0);
  ctx.log(obs::LogLevel::kInfo, "core", "tiled eval done",
          {"reports", res.reported.size()}, {"candidates", res.candidateClips});
  return res;
}

}  // namespace

EvalResult evaluateLayout(const Detector& det, const Layout& layout,
                          const EvalParams& p, engine::RunContext& ctx) {
  // Make the context's request id the calling thread's ambient trace id
  // for the whole evaluation: stage spans, parallelFor chunk spans, cache
  // spans and log records all correlate without touching any signature.
  const obs::ScopedTraceId traceScope(
      ctx.traceId().valid() ? ctx.traceId() : obs::currentTraceId());
  if (p.tiling.enabled()) return evaluateLayoutTiled(det, layout, p, ctx);
  const auto t0 = std::chrono::steady_clock::now();
  const Layer* l = layout.findLayer(det.params.layer);
  if (l == nullptr || l->empty()) return {};
  // Phase-boundary check: index construction is serial and can dominate a
  // short deadline; fail fast before paying for it.
  ctx.throwIfCancelled();
  const GridIndex index(l->rects(), p.extract.clip.clipSide);
  ctx.log(obs::LogLevel::kInfo, "core", "eval start",
          {"rects", index.rects().size()});

  EvalResult res;
  const LayerIndex layers{{det.params.layer, &index}};

  // One streaming pipeline from anchors to hits: extraction chains
  // straight into scoring, so the candidate list never materializes.
  engine::Stage<Point, ClipWindow> screen = screenStage(index, p.extract);
  // Counter stage: tallies extraction survivors as they stream past.
  engine::Stage<ClipWindow, ClipWindow> tap{
      "extract/candidates",
      [&res](engine::RunContext&, std::vector<ClipWindow>&& b) {
        res.candidateClips += b.size();
        return std::move(b);
      }};
  EvalStages s = makeEvalStages(det, layers, p);
  std::vector<ClipWindow> hits = engine::runPipeline(
      ctx, candidateAnchors(index, p.extract.clip.coreSide), screen, tap,
      s.clip, s.features, s.kernels, s.feedback);
  EvalResult out = finishEval(index, std::move(hits), p, ctx, std::move(res), t0);
  ctx.log(obs::LogLevel::kInfo, "core", "eval done",
          {"reports", out.reported.size()}, {"candidates", out.candidateClips});
  return out;
}

std::vector<RankedReport> rankReports(const Detector& det,
                                      const GridIndex& index,
                                      const std::vector<ClipWindow>& reports,
                                      engine::RunContext& ctx) {
  ctx.throwIfCancelled();
  const LayerIndex layers{{det.params.layer, &index}};
  auto rank = engine::mapStage<ClipWindow>(
      "eval/rank", [&det, &layers](const ClipWindow& w) {
        const Clip clip = extractClip(layers, w);
        return RankedReport{
            w, det.hotspotProbability(
                   CorePattern::fromCore(clip, det.params.layer))};
      });
  std::vector<RankedReport> out = engine::runPipeline(ctx, reports, rank);
  std::sort(out.begin(), out.end(),
            [](const RankedReport& a, const RankedReport& b) {
              return a.probability > b.probability;
            });
  return out;
}

EvalResult evaluateLayoutWindowScan(const Detector& det, const Layout& layout,
                                    const EvalParams& p,
                                    engine::RunContext& ctx, double overlap) {
  const Layer* l = layout.findLayer(det.params.layer);
  if (l == nullptr || l->empty()) return {};
  ctx.throwIfCancelled();
  const GridIndex index(l->rects(), p.extract.clip.clipSide);
  std::vector<ClipWindow> windows =
      windowScanClips(layout, det.params.layer, p.extract.clip, overlap);
  // Skip geometry-free windows (they can never be flagged) but keep the
  // full-scan structure otherwise.
  std::erase_if(windows, [&index](const ClipWindow& w) {
    return !index.anyOverlap(w.clip);
  });
  return evaluateCandidates(det, index, windows, p, ctx);
}

EvalResult evaluateLayout(const Detector& det, const Layout& layout,
                          const EvalParams& p) {
  engine::RunContext ctx(p.threads);
  return evaluateLayout(det, layout, p, ctx);
}

EvalResult evaluateCandidates(const Detector& det, const GridIndex& index,
                              const std::vector<ClipWindow>& candidates,
                              const EvalParams& p) {
  engine::RunContext ctx(p.threads);
  return evaluateCandidates(det, index, candidates, p, ctx);
}

std::vector<RankedReport> rankReports(const Detector& det,
                                      const GridIndex& index,
                                      const std::vector<ClipWindow>& reports) {
  engine::RunContext ctx(1);
  return rankReports(det, index, reports, ctx);
}

EvalResult evaluateLayoutWindowScan(const Detector& det, const Layout& layout,
                                    const EvalParams& p, double overlap) {
  engine::RunContext ctx(p.threads);
  return evaluateLayoutWindowScan(det, layout, p, ctx, overlap);
}

}  // namespace hsd::core
