#include "core/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>

#include "geom/hashing.hpp"

#include "engine/stats.hpp"

namespace hsd::core {

namespace {

// Shift the clip *window* (geometry stays put), which shifts the pattern
// relative to the window — the paper's data-shifting derivative.
Clip windowShifted(const Clip& clip, const Point& d) {
  Clip out(clip.window().translated(d), clip.label());
  for (const LayerId id : clip.layerIds()) {
    std::vector<Rect> rs = clip.rectsOn(id);
    out.setRects(id, std::move(rs));
  }
  return out;
}

// Iterative learning (Sec. III-D2): double C and gamma until the training
// accuracy target is met or the bound is hit. Returns the last model.
struct IterativeResult {
  svm::SvmModel model;
  double finalC = 0;
  double finalGamma = 0;
  std::size_t iterations = 0;
};

// Per-class accuracy of `model` on pre-scaled vectors with the given label.
double classAccuracy(const svm::SvmModel& model,
                     const std::vector<svm::FeatureVector>& scaled,
                     int label) {
  if (scaled.empty()) return 1.0;
  std::size_t ok = 0;
  for (const svm::FeatureVector& x : scaled)
    if (model.predict(x) == label) ++ok;
  return double(ok) / double(scaled.size());
}

// Self-training loop of Sec. III-D2: double C and gamma until both class
// accuracies (hotspots of this cluster; the full raw non-hotspot set) meet
// the target, or the iteration bound is hit. Polls the run's cancellation
// flag between iterations so a long kernel fit can be abandoned.
IterativeResult iterativeTrain(const svm::Dataset& scaled,
                               const std::vector<svm::FeatureVector>& valPos,
                               const std::vector<svm::FeatureVector>& valNeg,
                               const TrainParams& tp,
                               engine::RunContext& ctx) {
  IterativeResult res;
  double C = tp.initC;
  double gamma = tp.initGamma;
  for (std::size_t it = 0;; ++it) {
    ctx.throwIfCancelled();
    svm::SvmParams sp;
    sp.C = C;
    sp.gamma = gamma;
    res.model = svm::train(scaled, sp).model;
    res.finalC = C;
    res.finalGamma = gamma;
    res.iterations = it + 1;
    const double posAcc = classAccuracy(res.model, valPos, +1);
    const double negAcc = classAccuracy(res.model, valNeg, -1);
    if ((posAcc >= tp.targetTrainAcc && negAcc >= tp.targetTrainAcc) ||
        it + 1 >= tp.maxSelfIter)
      break;
    C *= 2;
    gamma *= 2;
  }
  return res;
}

}  // namespace

std::vector<Clip> shiftDerivatives(const Clip& clip, Coord shiftNm) {
  std::vector<Clip> out{clip};
  if (shiftNm > 0) {
    out.push_back(windowShifted(clip, {shiftNm, 0}));
    out.push_back(windowShifted(clip, {-shiftNm, 0}));
    out.push_back(windowShifted(clip, {0, shiftNm}));
    out.push_back(windowShifted(clip, {0, -shiftNm}));
  }
  return out;
}

Detector trainDetector(const std::vector<Clip>& training,
                       const TrainParams& tp, engine::RunContext& ctx) {
  const auto t0 = std::chrono::steady_clock::now();
  Detector det;
  det.params = tp;

  std::vector<Clip> hs;
  std::vector<Clip> nhs;
  for (const Clip& c : training) {
    if (c.label() == Label::kHotspot)
      hs.push_back(c);
    else if (c.label() == Label::kNonHotspot)
      nhs.push_back(c);
  }
  if (hs.empty() || nhs.empty())
    throw std::invalid_argument(
        "trainDetector: need both hotspot and non-hotspot clips");
  det.stats.rawHotspots = hs.size();
  det.stats.rawNonHotspots = nhs.size();

  // Data shifting: upsample hotspots with 4-way shifted derivatives
  // (introduces the fuzziness that lets kernels catch near-miss clips).
  if (tp.enableShift) {
    std::vector<Clip> upsampled;
    upsampled.reserve(hs.size() * 5);
    for (const Clip& c : hs) {
      std::vector<Clip> d = shiftDerivatives(c, tp.shiftNm);
      upsampled.insert(upsampled.end(), std::make_move_iterator(d.begin()),
                       std::make_move_iterator(d.end()));
    }
    hs = std::move(upsampled);
  }
  det.stats.upsampledHotspots = hs.size();

  // Core patterns for classification and core-feature extraction.
  std::vector<CorePattern> hsCores;
  hsCores.reserve(hs.size());
  for (const Clip& c : hs) hsCores.push_back(CorePattern::fromCore(c, tp.layer));
  std::vector<CorePattern> nhsCores;
  nhsCores.reserve(nhs.size());
  for (const Clip& c : nhs)
    nhsCores.push_back(CorePattern::fromCore(c, tp.layer));

  engine::StageTimer classifyTimer(ctx.stats(), "train/classify",
                                   hs.size() + nhs.size(), ctx.tracer());
  std::vector<Cluster> hsClusters;
  if (tp.singleKernel) {
    Cluster all;
    all.topoKey = "*";
    all.members.resize(hs.size());
    for (std::size_t i = 0; i < hs.size(); ++i) all.members[i] = i;
    all.representative = 0;
    hsClusters.push_back(std::move(all));
  } else {
    hsClusters = classifyPatterns(hsCores, tp.classify);
  }
  const std::vector<Cluster> nhsClusters =
      classifyPatterns(nhsCores, tp.classify);
  classifyTimer.stop();
  det.stats.hotspotClusters = hsClusters.size();
  det.stats.nonHotspotClusters = nhsClusters.size();

  // Population balancing: the non-hotspot training set is the cluster
  // centroids only (downsampling + noise removal).
  std::vector<std::size_t> nhsSelected;
  if (tp.balancePopulation) {
    nhsSelected.reserve(nhsClusters.size());
    for (const Cluster& c : nhsClusters) nhsSelected.push_back(c.representative);
  } else {
    nhsSelected.resize(nhs.size());
    for (std::size_t i = 0; i < nhs.size(); ++i) nhsSelected[i] = i;
  }
  det.stats.balancedNonHotspots = nhsSelected.size();

  // Core feature vectors (shared across kernels). The full raw non-hotspot
  // feature list doubles as the self-training validation set.
  engine::StageTimer featureTimer(ctx.stats(), "train/features",
                                  hs.size() + nhs.size(), ctx.tracer());
  std::vector<svm::FeatureVector> hsFeat(hs.size());
  ctx.parallelFor(hs.size(), [&](std::size_t i) {
    hsFeat[i] = buildFeatureVector(hsCores[i], tp.features);
  });
  std::vector<svm::FeatureVector> allNhsFeat(nhs.size());
  ctx.parallelFor(nhs.size(), [&](std::size_t i) {
    allNhsFeat[i] = buildFeatureVector(nhsCores[i], tp.features);
  });
  featureTimer.stop();
  std::vector<svm::FeatureVector> nhsFeat(nhsSelected.size());
  for (std::size_t i = 0; i < nhsSelected.size(); ++i)
    nhsFeat[i] = allNhsFeat[nhsSelected[i]];

  // One SVM kernel per hotspot cluster (Fig. 9a), trained in parallel.
  engine::StageTimer kernelTimer(ctx.stats(), "train/kernels",
                                 hsClusters.size(), ctx.tracer());
  det.kernels.resize(hsClusters.size());
  ctx.parallelFor(hsClusters.size(), [&](std::size_t k) {
    const Cluster& cluster = hsClusters[k];
    svm::Dataset data;
    for (const std::size_t m : cluster.members) data.add(hsFeat[m], +1);
    for (const svm::FeatureVector& f : nhsFeat) data.add(f, -1);

    KernelEntry& entry = det.kernels[k];
    entry.topoKey = cluster.topoKey;
    entry.hotspotCount = cluster.members.size();
    entry.scaler.fit(data.x);
    entry.scaler.transformInPlace(data.x);

    std::vector<svm::FeatureVector> valPos;
    valPos.reserve(cluster.members.size());
    for (const std::size_t m : cluster.members)
      valPos.push_back(entry.scaler.transform(hsFeat[m]));
    std::vector<svm::FeatureVector> valNeg;
    valNeg.reserve(allNhsFeat.size());
    for (const svm::FeatureVector& f : allNhsFeat)
      valNeg.push_back(entry.scaler.transform(f));

    IterativeResult res = iterativeTrain(data, valPos, valNeg, tp, ctx);
    entry.model = std::move(res.model);
    entry.finalC = res.finalC;
    entry.finalGamma = res.finalGamma;
    entry.selfIterations = res.iterations;
  });
  kernelTimer.stop();

  // Feedback kernel (Sec. III-D4): self-evaluate the non-hotspot centroids;
  // the ones some kernel still flags as hotspots ("extras") become, with
  // their ambit, the negative side of the feedback training set.
  if (tp.enableFeedback) {
    engine::StageTimer feedbackTimer(ctx.stats(), "train/feedback",
                                     nhs.size(), ctx.tracer());
    std::vector<std::size_t> extraClipIdx;   // indices into nhs
    std::set<std::size_t> implicatedKernels;
    std::mutex mu;
    ctx.parallelFor(nhs.size(), [&](std::size_t i) {
      for (std::size_t k = 0; k < det.kernels.size(); ++k) {
        const svm::FeatureVector scaled =
            det.kernels[k].scaler.transform(allNhsFeat[i]);
        if (det.kernels[k].model.predict(scaled) > 0) {
          const std::lock_guard<std::mutex> lock(mu);
          extraClipIdx.push_back(i);
          implicatedKernels.insert(k);
          break;
        }
      }
    });
    std::sort(extraClipIdx.begin(), extraClipIdx.end());
    for (const std::size_t k : implicatedKernels)
      det.kernels[k].feedbackApplies = true;
    det.stats.feedbackExtras = extraClipIdx.size();

    if (!extraClipIdx.empty()) {
      // Sub-cluster the extras *with ambit information* and keep only the
      // sub-cluster centroids (Fig. 9c).
      std::vector<CorePattern> extraClips;
      extraClips.reserve(extraClipIdx.size());
      for (const std::size_t i : extraClipIdx)
        extraClips.push_back(CorePattern::fromClip(nhs[i], tp.layer));
      const std::vector<Cluster> sub =
          classifyPatterns(extraClips, tp.classify);

      svm::Dataset data;
      for (const Cluster& c : sub)
        data.add(buildFeatureVector(extraClips[c.representative],
                                    tp.feedbackFeatures),
                 -1);
      // Hotspot side: every hotspot cluster's members with core+ambit
      // features. (The paper uses the implicated clusters, extending to
      // all kernels when several contribute extras; training on the full
      // hotspot set lets the feedback kernel safely review every flagged
      // clip without reclaiming true hotspots of other clusters.)
      for (const Clip& c : hs)
        data.add(buildFeatureVector(CorePattern::fromClip(c, tp.layer),
                                    tp.feedbackFeatures),
                 +1);

      if (data.countLabel(1) > 0 && data.countLabel(-1) > 0) {
        det.feedbackScaler.fit(data.x);
        det.feedbackScaler.transformInPlace(data.x);
        std::vector<svm::FeatureVector> valPos, valNeg;
        for (std::size_t i = 0; i < data.size(); ++i)
          (data.y[i] > 0 ? valPos : valNeg).push_back(data.x[i]);
        det.feedbackModel = iterativeTrain(data, valPos, valNeg, tp, ctx).model;
        det.hasFeedback = true;
      }
    }
  }

  // Platt calibration on the training cores: max-kernel decision value vs
  // label, so reports can be ranked by P(hotspot).
  {
    const engine::StageTimer plattTimer(ctx.stats(), "train/platt",
                                        hs.size() + allNhsFeat.size(),
                                        ctx.tracer());
    std::vector<double> f(hsFeat.size() + allNhsFeat.size());
    std::vector<int> y(f.size());
    const auto maxDecision = [&det](const svm::FeatureVector& feat) {
      double best = -std::numeric_limits<double>::infinity();
      for (const KernelEntry& k : det.kernels)
        best = std::max(best, k.model.decision(k.scaler.transform(feat)));
      return best;
    };
    ctx.parallelFor(hsFeat.size(), [&](std::size_t i) {
      f[i] = maxDecision(hsFeat[i]);
      y[i] = +1;
    });
    ctx.parallelFor(allNhsFeat.size(), [&](std::size_t i) {
      f[hsFeat.size() + i] = maxDecision(allNhsFeat[i]);
      y[hsFeat.size() + i] = -1;
    });
    try {
      det.platt = svm::fitPlatt(f, y);
      det.hasPlatt = true;
    } catch (const std::invalid_argument&) {
      det.hasPlatt = false;  // degenerate decision distribution
    }
  }

  // Freeze the drift baseline: every training core scored through the
  // kernels exactly as eval/svm will score live windows (first flagging
  // kernel wins; unflagged cores attribute to the closest kernel), bucketed
  // into the shared MarginSketch layout. Live traffic that looks like the
  // training set then reproduces these proportions and scores PSI ~ 0.
  if (!det.kernels.empty()) {
    const engine::StageTimer baselineTimer(ctx.stats(), "train/baseline",
                                           hsFeat.size() + allNhsFeat.size(),
                                           ctx.tracer());
    const std::size_t n = hsFeat.size() + allNhsFeat.size();
    std::vector<std::uint32_t> slotOf(n);
    std::vector<std::uint32_t> bucketOf(n);
    std::vector<char> hotOf(n);
    const auto attribute = [&det](const svm::FeatureVector& feat,
                                  std::size_t i, std::vector<std::uint32_t>& s,
                                  std::vector<std::uint32_t>& b,
                                  std::vector<char>& h) {
      std::size_t bestK = 0;
      double bestD = -std::numeric_limits<double>::infinity();
      bool flagged = false;
      for (std::size_t k = 0; k < det.kernels.size(); ++k) {
        const double d = det.kernels[k].model.decision(
            det.kernels[k].scaler.transform(feat));
        if (d > 0) {
          bestK = k;
          bestD = d;
          flagged = true;
          break;
        }
        if (k == 0 || d > bestD) {
          bestK = k;
          bestD = d;
        }
      }
      s[i] = std::uint32_t(bestK);
      b[i] = std::uint32_t(obs::MarginSketch::bucketOf(bestD));
      h[i] = flagged;
    };
    ctx.parallelFor(hsFeat.size(), [&](std::size_t i) {
      attribute(hsFeat[i], i, slotOf, bucketOf, hotOf);
    });
    ctx.parallelFor(allNhsFeat.size(), [&](std::size_t i) {
      attribute(allNhsFeat[i], hsFeat.size() + i, slotOf, bucketOf, hotOf);
    });
    det.baseline.clusters.resize(det.kernels.size());
    const std::vector<std::string> names = det.clusterNames();
    for (std::size_t k = 0; k < det.kernels.size(); ++k)
      det.baseline.clusters[k].name = names[k];
    for (std::size_t i = 0; i < n; ++i) {
      obs::ModelBaseline::Cluster& c = det.baseline.clusters[slotOf[i]];
      ++c.buckets[bucketOf[i]];
      ++(hotOf[i] ? c.hot : c.cold);
    }
    det.hasBaseline = true;
  }

  det.stats.trainSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return det;
}

Detector trainDetector(const std::vector<Clip>& training,
                       const TrainParams& tp) {
  engine::RunContext ctx(tp.threads);
  return trainDetector(training, tp, ctx);
}

double Detector::hotspotProbability(const CorePattern& core) const {
  const double f = decisionValue(core);
  return hasPlatt ? platt.probability(f) : (f > 0 ? 1.0 : 0.0);
}

bool Detector::evaluateCore(const CorePattern& core, double bias) const {
  const svm::FeatureVector feat = buildFeatureVector(core, params.features);
  for (const KernelEntry& k : kernels)
    if (k.model.decision(k.scaler.transform(feat)) > bias) return true;
  return false;
}

double Detector::decisionValue(const CorePattern& core) const {
  const svm::FeatureVector feat = buildFeatureVector(core, params.features);
  double best = -std::numeric_limits<double>::infinity();
  for (const KernelEntry& k : kernels)
    best = std::max(best, k.model.decision(k.scaler.transform(feat)));
  return best;
}

bool Detector::evaluateClip(const Clip& clip, double bias,
                            bool useFeedback) const {
  const svm::FeatureVector feat = buildFeatureVector(
      CorePattern::fromCore(clip, params.layer), params.features);
  bool flagged = false;
  for (const KernelEntry& k : kernels) {
    if (k.model.decision(k.scaler.transform(feat)) > bias) {
      flagged = true;
      break;
    }
  }
  if (!flagged) return false;
  if (useFeedback && hasFeedback) {
    const svm::FeatureVector fb = buildFeatureVector(
        CorePattern::fromClip(clip, params.layer), params.feedbackFeatures);
    if (feedbackModel.predict(feedbackScaler.transform(fb)) < 0)
      return false;  // reclaimed as non-hotspot by the ambit-aware kernel
  }
  return true;
}

namespace {

void saveScaler(std::ostream& os, const svm::Scaler& s) {
  os << s.dim() << '\n';
  os.precision(17);
  for (const double v : s.mins()) os << v << ' ';
  os << '\n';
  for (const double v : s.maxs()) os << v << ' ';
  os << '\n';
}

svm::Scaler loadScaler(std::istream& is) {
  std::size_t d = 0;
  is >> d;
  std::vector<double> lo(d), hi(d);
  for (double& v : lo) is >> v;
  for (double& v : hi) is >> v;
  return svm::Scaler(std::move(lo), std::move(hi));
}

void saveFeatureParams(std::ostream& os, const FeatureParams& f) {
  os << f.maxInternal << ' ' << f.maxExternal << ' ' << f.maxDiagonal << ' '
     << f.maxSegment << ' ' << f.densityGridN << ' ' << int(f.canonicalize)
     << '\n';
}

FeatureParams loadFeatureParams(std::istream& is) {
  FeatureParams f;
  int canon = 1;
  is >> f.maxInternal >> f.maxExternal >> f.maxDiagonal >> f.maxSegment >>
      f.densityGridN >> canon;
  f.canonicalize = canon != 0;
  return f;
}

}  // namespace

void Detector::saveCore(std::ostream& os) const {
  os << "hsd_detector 2\n";
  os << params.clip.coreSide << ' ' << params.clip.clipSide << ' '
     << params.layer << '\n';
  saveFeatureParams(os, params.features);
  saveFeatureParams(os, params.feedbackFeatures);
  os << kernels.size() << '\n';
  for (const KernelEntry& k : kernels) {
    os << "kernel " << k.hotspotCount << ' ' << k.finalC << ' '
       << k.finalGamma << ' ' << k.selfIterations << ' '
       << int(k.feedbackApplies) << '\n';
    saveScaler(os, k.scaler);
    k.model.save(os);
  }
  os << int(hasFeedback) << '\n';
  if (hasFeedback) {
    saveScaler(os, feedbackScaler);
    feedbackModel.save(os);
  }
  os << int(hasPlatt) << ' ' << platt.a << ' ' << platt.b << '\n';
}

void Detector::save(std::ostream& os) const {
  saveCore(os);
  // The drift baseline rides after the fingerprinted core as an optional
  // trailing section — files saved before baselines existed load
  // unchanged, and old readers would stop before it anyway.
  if (hasBaseline) baseline.save(os);
}

std::vector<std::string> Detector::clusterNames() const {
  std::vector<std::string> names(kernels.size());
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    if (!kernels[i].topoKey.empty()) {
      names[i] = kernels[i].topoKey;
    } else if (hasBaseline && i < baseline.clusters.size()) {
      // topoKey is not serialized; a loaded detector recovers the names
      // from its baseline section so live slots match baseline clusters.
      names[i] = baseline.clusters[i].name;
    } else {
      names[i] = "k" + std::to_string(i);
    }
  }
  return names;
}

std::uint64_t Detector::fingerprint() const {
  // Hash the serialized core at full double precision: any retrain, load
  // of a different model, or parameter nudge changes some emitted byte.
  // Cheap relative to a single window evaluation; callers compute it once
  // per run, never per window.
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  saveCore(os);
  return hashString(os.str());
}

Detector Detector::load(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  if (magic != "hsd_detector" || version != 2)
    throw std::runtime_error("Detector::load: bad header");
  Detector det;
  int layer = 0;
  is >> det.params.clip.coreSide >> det.params.clip.clipSide >> layer;
  det.params.layer = LayerId(layer);
  det.params.features = loadFeatureParams(is);
  det.params.feedbackFeatures = loadFeatureParams(is);
  std::size_t nk = 0;
  is >> nk;
  det.kernels.resize(nk);
  for (KernelEntry& k : det.kernels) {
    std::string kw;
    int fba = 0;
    is >> kw >> k.hotspotCount >> k.finalC >> k.finalGamma >>
        k.selfIterations >> fba;
    k.feedbackApplies = fba != 0;
    if (kw != "kernel") throw std::runtime_error("Detector::load: bad kernel");
    k.scaler = loadScaler(is);
    k.model = svm::SvmModel::load(is);
  }
  int fb = 0;
  is >> fb;
  det.hasFeedback = fb != 0;
  if (det.hasFeedback) {
    det.feedbackScaler = loadScaler(is);
    det.feedbackModel = svm::SvmModel::load(is);
  }
  int hp = 0;
  is >> hp >> det.platt.a >> det.platt.b;
  det.hasPlatt = hp != 0;
  if (!is) throw std::runtime_error("Detector::load: truncated");
  std::string kw;
  if (is >> kw) {
    if (kw != "baseline")
      throw std::runtime_error("Detector::load: unexpected trailer '" + kw +
                               "'");
    det.baseline = obs::ModelBaseline::load(is);
    det.hasBaseline = true;
  }
  return det;
}

}  // namespace hsd::core
