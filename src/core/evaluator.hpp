// End-to-end evaluation pipeline (Fig. 3, right half): clip extraction ->
// multiple-kernel + feedback evaluation -> redundant clip removal ->
// reported hotspot windows.
//
// The flow runs as a staged streaming pipeline on engine::RunContext:
//
//   anchors -> [extract/screen] -> [extract/candidates] -> [eval/clip]
//           -> [eval/features] -> [eval/svm] -> [eval/feedback]
//           -> hits -> [eval/removal] -> reported
//
// Candidate windows stream through the stages in bounded batches instead
// of materializing full vectors between phases; every stage's calls /
// items / wall seconds land in the context's EngineStats. All stages use
// index-stable parallelism, so reports are byte-identical across thread
// counts.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/extract.hpp"
#include "core/removal.hpp"
#include "core/trainer.hpp"
#include "engine/run_context.hpp"
#include "engine/tiler.hpp"

namespace hsd::core {

struct EvalParams {
  ExtractParams extract;
  RemovalParams removal;
  /// Decision-threshold shift applied to every kernel; positive values
  /// trade accuracy for fewer extras (the ours_med / ours_low operating
  /// points and the Fig. 15 sweep).
  double decisionBias = 0.0;
  bool useFeedback = true;
  bool useRemoval = true;
  /// Thread count used only by the RunContext-free back-compat overloads;
  /// with an explicit context, ctx.threadCount() governs.
  std::size_t threads = 1;
  /// Spatial tiling (engine/tiler.hpp): when enabled, evaluateLayout
  /// partitions the layout into halo-expanded grid tiles, runs the stage
  /// pipeline per tile, and deterministically merges — reports are
  /// byte-identical to the monolithic path, so (like threads) tiling is
  /// deliberately excluded from fingerprint().
  engine::TilingParams tiling;

  /// Stable config fingerprint over every field that changes evaluation
  /// results (extract + removal + bias + toggles; threads excluded).
  std::uint64_t fingerprint() const;
};

struct EvalResult {
  std::vector<ClipWindow> reported;   ///< final hotspot reports
  std::size_t candidateClips = 0;     ///< clips surviving extraction
  std::size_t flaggedBeforeRemoval = 0;
  double evalSeconds = 0.0;
};

/// Run the full evaluation phase of `det` on `layout`, streaming candidate
/// clips from extraction through scoring without materializing the
/// candidate list. With p.tiling enabled the run is tiled (see below) but
/// the reports stay byte-identical.
EvalResult evaluateLayout(const Detector& det, const Layout& layout,
                          const EvalParams& p, engine::RunContext& ctx);

// --- Tiled evaluation -----------------------------------------------
// evaluateLayout dispatches through these when p.tiling.enabled(). They
// are public so the serving layer can fan one request's tiles across
// several pooled contexts: prepare once, evaluate each tile on whatever
// context is free, merge once. Determinism contract: the merge output
// never depends on which context ran which tile, in what order, or with
// how many threads.

/// The per-request tiling plan: the global geometry index, the tile grid,
/// and the monolithic anchor stream partitioned to tiles by the ownership
/// rule (anchor's canonical corner, engine::TilePlan::ownerOf).
struct TiledLayout {
  GridIndex index;        ///< global geometry index (also used by removal)
  engine::TilePlan plan;
  /// One entry per *non-empty* tile, in tile-id order: the tile and its
  /// owned anchors as (global sequence number, anchor), sequence-sorted.
  struct Work {
    std::size_t tileId = 0;
    std::vector<std::pair<std::uint64_t, Point>> anchors;
  };
  std::vector<Work> work;
  std::size_t anchorCount = 0;
};

/// Enumerate the monolithic candidate-anchor stream once and partition it
/// to tiles. Throws std::invalid_argument when p.tiling is disabled or
/// the halo is below the exactness minimum (engine::minTileHalo). A
/// missing/empty layer yields an empty plan (no work).
TiledLayout prepareTiledLayout(const Layout& layout, LayerId layer,
                               const EvalParams& p);

/// Pin every per-tile stage slot ("tile<k>/...") in tile order so the
/// ENGINE_STATS key order is deterministic no matter how tiles are
/// scheduled across threads or contexts.
void declareTileStages(engine::EngineStats& stats, const TiledLayout& tiled,
                       bool withCache);

/// Hits and counters of one evaluated tile.
struct TileEvalResult {
  std::vector<engine::TileHit> hits;
  std::size_t candidateClips = 0;
};

/// Evaluate one work item (tiled.work[workIndex]) on `ctx`: builds a
/// local index over the tile's halo-expanded geometry and streams the
/// tile's anchors through the full stage pipeline under "tile<k>/" names.
/// Safe to call concurrently for different work items.
TileEvalResult evaluateTile(const Detector& det, const TiledLayout& tiled,
                            std::size_t workIndex, const EvalParams& p,
                            engine::RunContext& ctx);

/// Ownership-dedup merge (engine::ReportMerger) followed by the *global*
/// redundant-clip removal pass — removal is order-dependent, so it runs
/// once over the merged monolithic-order hit stream, never per tile.
/// `t0` is the evaluation start, so evalSeconds covers prepare + tiles +
/// merge.
EvalResult finishTiledEval(const TiledLayout& tiled,
                           std::vector<TileEvalResult>&& tiles,
                           const EvalParams& p, engine::RunContext& ctx,
                           std::chrono::steady_clock::time_point t0);

/// Evaluate a pre-extracted candidate list against a prebuilt geometry
/// index (used by benches that reuse extraction across operating points).
EvalResult evaluateCandidates(const Detector& det, const GridIndex& index,
                              const std::vector<ClipWindow>& candidates,
                              const EvalParams& p, engine::RunContext& ctx);

/// A reported hotspot with its Platt-calibrated confidence.
struct RankedReport {
  ClipWindow window;
  double probability = 0.0;

  friend constexpr auto operator<=>(const RankedReport&,
                                    const RankedReport&) = default;
};

/// Rank reported windows by the detector's calibrated hotspot probability
/// (descending), so downstream correction can triage the worst first.
std::vector<RankedReport> rankReports(const Detector& det,
                                      const GridIndex& index,
                                      const std::vector<ClipWindow>& reports,
                                      engine::RunContext& ctx);

/// Full-layout scanning comparator (what Sec. III-E avoids): evaluate
/// every sliding window at the given overlap instead of the extracted
/// candidates. Same detector, same scoring — used to measure the
/// evaluation-time saving of clip extraction (Table V).
EvalResult evaluateLayoutWindowScan(const Detector& det, const Layout& layout,
                                    const EvalParams& p,
                                    engine::RunContext& ctx,
                                    double overlap = 0.5);

// Back-compat overloads: construct a default context (p.threads for the
// evaluators, serial for ranking) per call.
EvalResult evaluateLayout(const Detector& det, const Layout& layout,
                          const EvalParams& p);
EvalResult evaluateCandidates(const Detector& det, const GridIndex& index,
                              const std::vector<ClipWindow>& candidates,
                              const EvalParams& p);
std::vector<RankedReport> rankReports(const Detector& det,
                                      const GridIndex& index,
                                      const std::vector<ClipWindow>& reports);
EvalResult evaluateLayoutWindowScan(const Detector& det, const Layout& layout,
                                    const EvalParams& p,
                                    double overlap = 0.5);

}  // namespace hsd::core
