// End-to-end evaluation pipeline (Fig. 3, right half): clip extraction ->
// multiple-kernel + feedback evaluation -> redundant clip removal ->
// reported hotspot windows.
//
// The flow runs as a staged streaming pipeline on engine::RunContext:
//
//   anchors -> [extract/screen] -> [extract/candidates] -> [eval/clip]
//           -> [eval/features] -> [eval/svm] -> [eval/feedback]
//           -> hits -> [eval/removal] -> reported
//
// Candidate windows stream through the stages in bounded batches instead
// of materializing full vectors between phases; every stage's calls /
// items / wall seconds land in the context's EngineStats. All stages use
// index-stable parallelism, so reports are byte-identical across thread
// counts.
#pragma once

#include <cstddef>
#include <vector>

#include "core/extract.hpp"
#include "core/removal.hpp"
#include "core/trainer.hpp"
#include "engine/run_context.hpp"

namespace hsd::core {

struct EvalParams {
  ExtractParams extract;
  RemovalParams removal;
  /// Decision-threshold shift applied to every kernel; positive values
  /// trade accuracy for fewer extras (the ours_med / ours_low operating
  /// points and the Fig. 15 sweep).
  double decisionBias = 0.0;
  bool useFeedback = true;
  bool useRemoval = true;
  /// Thread count used only by the RunContext-free back-compat overloads;
  /// with an explicit context, ctx.threadCount() governs.
  std::size_t threads = 1;

  /// Stable config fingerprint over every field that changes evaluation
  /// results (extract + removal + bias + toggles; threads excluded).
  std::uint64_t fingerprint() const;
};

struct EvalResult {
  std::vector<ClipWindow> reported;   ///< final hotspot reports
  std::size_t candidateClips = 0;     ///< clips surviving extraction
  std::size_t flaggedBeforeRemoval = 0;
  double evalSeconds = 0.0;
};

/// Run the full evaluation phase of `det` on `layout`, streaming candidate
/// clips from extraction through scoring without materializing the
/// candidate list.
EvalResult evaluateLayout(const Detector& det, const Layout& layout,
                          const EvalParams& p, engine::RunContext& ctx);

/// Evaluate a pre-extracted candidate list against a prebuilt geometry
/// index (used by benches that reuse extraction across operating points).
EvalResult evaluateCandidates(const Detector& det, const GridIndex& index,
                              const std::vector<ClipWindow>& candidates,
                              const EvalParams& p, engine::RunContext& ctx);

/// A reported hotspot with its Platt-calibrated confidence.
struct RankedReport {
  ClipWindow window;
  double probability = 0.0;

  friend constexpr auto operator<=>(const RankedReport&,
                                    const RankedReport&) = default;
};

/// Rank reported windows by the detector's calibrated hotspot probability
/// (descending), so downstream correction can triage the worst first.
std::vector<RankedReport> rankReports(const Detector& det,
                                      const GridIndex& index,
                                      const std::vector<ClipWindow>& reports,
                                      engine::RunContext& ctx);

/// Full-layout scanning comparator (what Sec. III-E avoids): evaluate
/// every sliding window at the given overlap instead of the extracted
/// candidates. Same detector, same scoring — used to measure the
/// evaluation-time saving of clip extraction (Table V).
EvalResult evaluateLayoutWindowScan(const Detector& det, const Layout& layout,
                                    const EvalParams& p,
                                    engine::RunContext& ctx,
                                    double overlap = 0.5);

// Back-compat overloads: construct a default context (p.threads for the
// evaluators, serial for ranking) per call.
EvalResult evaluateLayout(const Detector& det, const Layout& layout,
                          const EvalParams& p);
EvalResult evaluateCandidates(const Detector& det, const GridIndex& index,
                              const std::vector<ClipWindow>& candidates,
                              const EvalParams& p);
std::vector<RankedReport> rankReports(const Detector& det,
                                      const GridIndex& index,
                                      const std::vector<ClipWindow>& reports);
EvalResult evaluateLayoutWindowScan(const Detector& det, const Layout& layout,
                                    const EvalParams& p,
                                    double overlap = 0.5);

}  // namespace hsd::core
