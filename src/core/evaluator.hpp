// End-to-end evaluation pipeline (Fig. 3, right half): clip extraction ->
// multiple-kernel + feedback evaluation -> redundant clip removal ->
// reported hotspot windows.
#pragma once

#include <cstddef>
#include <vector>

#include "core/extract.hpp"
#include "core/removal.hpp"
#include "core/trainer.hpp"

namespace hsd::core {

struct EvalParams {
  ExtractParams extract;
  RemovalParams removal;
  /// Decision-threshold shift applied to every kernel; positive values
  /// trade accuracy for fewer extras (the ours_med / ours_low operating
  /// points and the Fig. 15 sweep).
  double decisionBias = 0.0;
  bool useFeedback = true;
  bool useRemoval = true;
  std::size_t threads = 1;
};

struct EvalResult {
  std::vector<ClipWindow> reported;   ///< final hotspot reports
  std::size_t candidateClips = 0;     ///< clips surviving extraction
  std::size_t flaggedBeforeRemoval = 0;
  double evalSeconds = 0.0;
};

/// Run the full evaluation phase of `det` on `layout`.
EvalResult evaluateLayout(const Detector& det, const Layout& layout,
                          const EvalParams& p);

/// Evaluate a pre-extracted candidate list against a prebuilt geometry
/// index (used by benches that reuse extraction across operating points).
EvalResult evaluateCandidates(const Detector& det, const GridIndex& index,
                              const std::vector<ClipWindow>& candidates,
                              const EvalParams& p);

/// A reported hotspot with its Platt-calibrated confidence.
struct RankedReport {
  ClipWindow window;
  double probability = 0.0;

  friend constexpr auto operator<=>(const RankedReport&,
                                    const RankedReport&) = default;
};

/// Rank reported windows by the detector's calibrated hotspot probability
/// (descending), so downstream correction can triage the worst first.
std::vector<RankedReport> rankReports(const Detector& det,
                                      const GridIndex& index,
                                      const std::vector<ClipWindow>& reports);

/// Full-layout scanning comparator (what Sec. III-E avoids): evaluate
/// every sliding window at the given overlap instead of the extracted
/// candidates. Same detector, same scoring — used to measure the
/// evaluation-time saving of clip extraction (Table V).
EvalResult evaluateLayoutWindowScan(const Detector& det, const Layout& layout,
                                    const EvalParams& p,
                                    double overlap = 0.5);

}  // namespace hsd::core
