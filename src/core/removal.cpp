#include "core/removal.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "geom/hashing.hpp"
#include "geom/rectset.hpp"

namespace hsd::core {

std::uint64_t RemovalParams::fingerprint() const {
  std::uint64_t h = hashString("RemovalParams/v1");
  h = hashCombine(h, clip.fingerprint());
  h = hashCombine(h, hashDouble(minCoreOverlapFrac));
  h = hashCombine(h, hashCoord(reframeSeparation));
  h = hashCombine(h, hashMix(reframeThreshold));
  h = hashCombine(h, hashCoord(maxMargin));
  return h;
}

namespace {

struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
};

struct Region {
  std::vector<std::size_t> members;
  Rect bbox;
};

// Clip merging (Fig. 12b): regions of transitively core-overlapping
// reports (overlap at least `frac` of the core area).
std::vector<Region> mergeRegions(const std::vector<ClipWindow>& wins,
                                 double frac) {
  std::vector<Rect> cores;
  cores.reserve(wins.size());
  for (const ClipWindow& w : wins) cores.push_back(w.core);
  const GridIndex idx(cores, cores.empty() ? 1 : cores.front().width() * 4);

  UnionFind uf(wins.size());
  for (std::size_t i = 0; i < wins.size(); ++i) {
    const double minOv = frac * double(wins[i].core.area());
    for (const std::size_t j : idx.query(wins[i].core)) {
      if (j == i) continue;
      if (double(wins[i].core.overlapArea(wins[j].core)) >= minOv)
        uf.unite(i, j);
    }
  }

  std::vector<Region> regions;
  std::vector<std::int64_t> rootToRegion(wins.size(), -1);
  for (std::size_t i = 0; i < wins.size(); ++i) {
    const std::size_t r = uf.find(i);
    if (rootToRegion[r] < 0) {
      rootToRegion[r] = std::int64_t(regions.size());
      regions.push_back({{}, wins[i].core});
    }
    Region& reg = regions[std::size_t(rootToRegion[r])];
    reg.members.push_back(i);
    reg.bbox = reg.bbox.unite(wins[i].core);
  }
  return regions;
}

// Clip reframing (Fig. 12c): cover the region bbox with cores at pitch
// l_s < l_c so any core-sized square inside the region overlaps one.
std::vector<ClipWindow> reframeRegion(const Region& reg,
                                      const RemovalParams& p) {
  const Coord lc = p.clip.coreSide;
  const Coord ls = std::min(p.reframeSeparation, lc - 1);
  std::vector<Coord> xs, ys;
  for (Coord x = reg.bbox.lo.x;; x += ls) {
    if (x + lc >= reg.bbox.hi.x) {
      xs.push_back(std::max(reg.bbox.lo.x, reg.bbox.hi.x - lc));
      break;
    }
    xs.push_back(x);
  }
  for (Coord y = reg.bbox.lo.y;; y += ls) {
    if (y + lc >= reg.bbox.hi.y) {
      ys.push_back(std::max(reg.bbox.lo.y, reg.bbox.hi.y - lc));
      break;
    }
    ys.push_back(y);
  }
  std::vector<ClipWindow> out;
  out.reserve(xs.size() * ys.size());
  for (const Coord y : ys)
    for (const Coord x : xs) out.push_back(ClipWindow::atCore({x, y}, p.clip));
  return out;
}

std::vector<ClipWindow> mergeAndReframe(const std::vector<ClipWindow>& wins,
                                        const RemovalParams& p) {
  std::vector<ClipWindow> out;
  for (const Region& reg : mergeRegions(wins, p.minCoreOverlapFrac)) {
    if (reg.members.size() > p.reframeThreshold) {
      std::vector<ClipWindow> rf = reframeRegion(reg, p);
      out.insert(out.end(), rf.begin(), rf.end());
    } else {
      for (const std::size_t i : reg.members) out.push_back(wins[i]);
    }
  }
  return out;
}

// Covered-core pruning (Fig. 12d): a core is dropped when every polygon
// piece inside it is covered by other surviving cores and each of its four
// corners lies inside some other surviving core.
std::vector<ClipWindow> pruneCovered(const std::vector<ClipWindow>& wins,
                                     const GridIndex& layoutIndex,
                                     const RemovalParams& p) {
  (void)p;
  std::vector<Rect> cores;
  cores.reserve(wins.size());
  for (const ClipWindow& w : wins) cores.push_back(w.core);
  const GridIndex coreIdx(cores, cores.empty() ? 1 : cores.front().width() * 4);

  std::vector<char> alive(wins.size(), 1);
  for (std::size_t i = 0; i < wins.size(); ++i) {
    const Rect& core = wins[i].core;
    std::vector<Rect> others;
    for (const std::size_t j : coreIdx.query(core))
      if (j != i && alive[j]) others.push_back(cores[j]);
    if (others.empty()) continue;

    // Condition 2: all four corners inside some other core.
    const Point corners[4] = {core.lo,
                              {core.hi.x, core.lo.y},
                              {core.lo.x, core.hi.y},
                              core.hi};
    bool cornersCovered = true;
    for (const Point& c : corners) {
      bool found = false;
      for (const Rect& o : others)
        if (o.contains(c)) {
          found = true;
          break;
        }
      if (!found) {
        cornersCovered = false;
        break;
      }
    }
    if (!cornersCovered) continue;

    // Condition 1: every polygon piece inside this core is fully covered
    // by the union of the other cores. A core with no geometry at all is
    // kept (vacuous coverage must not discard it: an actual hotspot core
    // could still sit in the empty span it covers).
    bool geomCovered = true;
    std::size_t pieceCount = 0;
    for (const std::size_t gi : layoutIndex.query(core)) {
      const Rect piece = layoutIndex.rects()[gi].intersect(core);
      if (!piece.valid() || piece.empty()) continue;
      ++pieceCount;
      std::vector<Rect> coverage;
      for (const Rect& o : others) {
        const Rect ov = o.intersect(piece);
        if (ov.valid() && !ov.empty()) coverage.push_back(ov);
      }
      if (unionArea(coverage) != piece.area()) {
        geomCovered = false;
        break;
      }
    }
    if (geomCovered && pieceCount > 0) alive[i] = 0;
  }

  std::vector<ClipWindow> out;
  for (std::size_t i = 0; i < wins.size(); ++i)
    if (alive[i]) out.push_back(wins[i]);
  return out;
}

// Clip shifting (Fig. 12e): when the clip's polygons hug one side, recenter
// the clip on the polygons' center of gravity along the violating axis.
ClipWindow shiftToGravity(const ClipWindow& win, const GridIndex& layoutIndex,
                          const RemovalParams& p) {
  std::vector<Rect> pieces;
  for (const std::size_t gi : layoutIndex.query(win.clip)) {
    const Rect piece = layoutIndex.rects()[gi].intersect(win.clip);
    if (piece.valid() && !piece.empty()) pieces.push_back(piece);
  }
  if (pieces.empty()) return win;
  Rect bbox = pieces.front();
  double cx = 0, cy = 0, totalA = 0;
  for (const Rect& r : pieces) {
    bbox = bbox.unite(r);
    const double a = double(r.area());
    cx += a * 0.5 * double(r.lo.x + r.hi.x);
    cy += a * 0.5 * double(r.lo.y + r.hi.y);
    totalA += a;
  }
  if (totalA <= 0) return win;
  cx /= totalA;
  cy /= totalA;

  const Coord ml = bbox.lo.x - win.clip.lo.x;
  const Coord mr = win.clip.hi.x - bbox.hi.x;
  const Coord mb = bbox.lo.y - win.clip.lo.y;
  const Coord mt = win.clip.hi.y - bbox.hi.y;

  Point center = win.core.center();
  if (std::max(ml, mr) > p.maxMargin) center.x = Coord(std::llround(cx));
  if (std::max(mb, mt) > p.maxMargin) center.y = Coord(std::llround(cy));
  if (center == win.core.center()) return win;
  return ClipWindow::centeredOn(center, p.clip);
}

}  // namespace

std::vector<ClipWindow> removeRedundantClips(
    const std::vector<ClipWindow>& reported, const GridIndex& layoutIndex,
    const RemovalParams& p, engine::RunContext& ctx) {
  if (reported.empty()) return {};
  const engine::StageTimer timer(ctx.stats(), "eval/removal",
                                 reported.size(), ctx.tracer());
  // Pass 1: merge + reframe.
  std::vector<ClipWindow> wins = mergeAndReframe(reported, p);
  // Pass 2: drop cores fully covered by their neighbors (inherently
  // sequential: each verdict depends on which earlier cores survived).
  wins = pruneCovered(wins, layoutIndex, p);
  // Pass 3: recenter clips hugging one side (independent per window).
  ctx.parallelFor(wins.size(), [&](std::size_t i) {
    wins[i] = shiftToGravity(wins[i], layoutIndex, p);
  });
  // Pass 4: merge + reframe again.
  return mergeAndReframe(wins, p);
}

std::vector<ClipWindow> removeRedundantClips(
    const std::vector<ClipWindow>& reported, const GridIndex& layoutIndex,
    const RemovalParams& p) {
  engine::RunContext ctx(1);
  return removeRedundantClips(reported, layoutIndex, p, ctx);
}

}  // namespace hsd::core
