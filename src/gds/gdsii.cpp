#include "gds/gdsii.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <vector>

#include "gds/real8.hpp"
#include "geom/polygon.hpp"

namespace hsd::gds {

namespace {

// Record type bytes (record << 8 | datatype).
enum Rec : std::uint16_t {
  kHeader = 0x0002,
  kBgnLib = 0x0102,
  kLibName = 0x0206,
  kUnits = 0x0305,
  kEndLib = 0x0400,
  kBgnStr = 0x0502,
  kStrName = 0x0606,
  kEndStr = 0x0700,
  kBoundary = 0x0800,
  kPath = 0x0900,
  kSref = 0x0A00,
  kAref = 0x0B00,
  kLayer = 0x0D02,
  kDataType = 0x0E02,
  kWidth = 0x0F03,
  kXy = 0x1003,
  kEndEl = 0x1100,
  kSname = 0x1206,
  kColRow = 0x1302,
  kPathType = 0x2102,
  kStrans = 0x1A01,
  kMag = 0x1B05,
  kAngle = 0x1C05,
};

struct Record {
  std::uint16_t type = 0;
  std::vector<std::uint8_t> data;

  std::int16_t i16(std::size_t i) const {
    return std::int16_t((data[2 * i] << 8) | data[2 * i + 1]);
  }
  std::int32_t i32(std::size_t i) const {
    return std::int32_t((std::uint32_t(data[4 * i]) << 24) |
                        (std::uint32_t(data[4 * i + 1]) << 16) |
                        (std::uint32_t(data[4 * i + 2]) << 8) |
                        std::uint32_t(data[4 * i + 3]));
  }
  std::uint64_t u64(std::size_t i) const {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v = (v << 8) | data[8 * i + b];
    return v;
  }
  std::string str() const {
    std::string s(data.begin(), data.end());
    while (!s.empty() && s.back() == '\0') s.pop_back();
    return s;
  }
};

bool readRecord(std::istream& is, Record& rec) {
  std::array<std::uint8_t, 4> hdr{};
  if (!is.read(reinterpret_cast<char*>(hdr.data()), 4)) return false;
  const std::uint16_t len = std::uint16_t((hdr[0] << 8) | hdr[1]);
  if (len < 4) throw GdsError("GDSII: record length < 4");
  rec.type = std::uint16_t((hdr[2] << 8) | hdr[3]);
  rec.data.resize(len - 4);
  if (len > 4 &&
      !is.read(reinterpret_cast<char*>(rec.data.data()), len - 4))
    throw GdsError("GDSII: truncated record");
  return true;
}

struct BoundaryEl {
  LayerId layer = 0;
  std::vector<Point> pts;
};

struct PathEl {
  LayerId layer = 0;
  Coord width = 0;
  std::vector<Point> pts;
};

struct RefEl {
  std::string sname;
  bool reflect = false;
  int angleDeg = 0;
  Point origin;
  bool isArray = false;
  int cols = 1;
  int rows = 1;
  Point colStep;  // per-column displacement
  Point rowStep;  // per-row displacement
};

struct Struct {
  std::vector<BoundaryEl> boundaries;
  std::vector<PathEl> paths;
  std::vector<RefEl> refs;
};

std::vector<Point> parseXy(const Record& rec) {
  const std::size_t n = rec.data.size() / 8;
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rec.i32(2 * i), rec.i32(2 * i + 1)});
  return pts;
}

// Convert a Manhattan path center-line to rectangles of the given width.
std::vector<Rect> pathToRects(const PathEl& pe) {
  std::vector<Rect> out;
  const Coord hw = pe.width / 2;
  if (hw <= 0) return out;
  for (std::size_t i = 0; i + 1 < pe.pts.size(); ++i) {
    const Point& a = pe.pts[i];
    const Point& b = pe.pts[i + 1];
    if (a.x == b.x) {
      out.push_back({a.x - hw, std::min(a.y, b.y), a.x + hw,
                     std::max(a.y, b.y)});
    } else if (a.y == b.y) {
      out.push_back({std::min(a.x, b.x), a.y - hw, std::max(a.x, b.x),
                     a.y + hw});
    } else {
      throw GdsError("GDSII: non-Manhattan PATH segment");
    }
  }
  return out;
}

// Parse the whole stream into raw structures (definition order preserved).
void parseStructs(std::istream& is, std::map<std::string, Struct>& strs,
                  std::vector<std::string>& order) {
  Record rec;
  std::string curName;
  Struct* cur = nullptr;
  enum class ElKind { kNone, kBoundary, kPath, kRef };
  ElKind kind = ElKind::kNone;
  BoundaryEl bnd;
  PathEl path;
  RefEl ref;

  while (readRecord(is, rec)) {
    switch (rec.type) {
      case kBgnStr:
        curName.clear();
        break;
      case kStrName:
        curName = rec.str();
        order.push_back(curName);
        cur = &strs[curName];
        break;
      case kEndStr:
        cur = nullptr;
        break;
      case kBoundary:
        kind = ElKind::kBoundary;
        bnd = {};
        break;
      case kPath:
        kind = ElKind::kPath;
        path = {};
        break;
      case kSref:
      case kAref:
        kind = ElKind::kRef;
        ref = {};
        ref.isArray = rec.type == kAref;
        break;
      case kLayer:
        if (kind == ElKind::kBoundary) bnd.layer = LayerId(rec.i16(0));
        if (kind == ElKind::kPath) path.layer = LayerId(rec.i16(0));
        break;
      case kWidth:
        if (kind == ElKind::kPath) path.width = rec.i32(0);
        break;
      case kSname:
        ref.sname = rec.str();
        break;
      case kStrans:
        ref.reflect = (rec.i16(0) & std::int16_t(0x8000)) != 0;
        break;
      case kAngle:
        ref.angleDeg = int(decodeReal8(rec.u64(0)) + 0.5);
        break;
      case kMag:
        if (decodeReal8(rec.u64(0)) != 1.0)
          throw GdsError("GDSII: MAG != 1 not supported");
        break;
      case kColRow:
        ref.cols = rec.i16(0);
        ref.rows = rec.i16(1);
        break;
      case kXy: {
        const std::vector<Point> pts = parseXy(rec);
        if (kind == ElKind::kBoundary) bnd.pts = pts;
        if (kind == ElKind::kPath) path.pts = pts;
        if (kind == ElKind::kRef) {
          if (!pts.empty()) ref.origin = pts[0];
          if (ref.isArray && pts.size() >= 3) {
            // AREF XY: origin, column endpoint, row endpoint.
            ref.colStep = {(pts[1].x - pts[0].x) / std::max(ref.cols, 1),
                           (pts[1].y - pts[0].y) / std::max(ref.cols, 1)};
            ref.rowStep = {(pts[2].x - pts[0].x) / std::max(ref.rows, 1),
                           (pts[2].y - pts[0].y) / std::max(ref.rows, 1)};
          }
        }
        break;
      }
      case kEndEl:
        if (cur == nullptr) throw GdsError("GDSII: element outside structure");
        if (kind == ElKind::kBoundary) cur->boundaries.push_back(bnd);
        if (kind == ElKind::kPath) cur->paths.push_back(path);
        if (kind == ElKind::kRef) cur->refs.push_back(ref);
        kind = ElKind::kNone;
        break;
      case kEndLib:
        return;
      default:
        break;  // HEADER, BGNLIB, LIBNAME, UNITS, PATHTYPE etc: skip
    }
  }
  if (order.empty()) throw GdsError("GDSII: no structures");
}

// GDS instance orientation: reflect about the x-axis *before* the ccw
// rotation. Maps to a D8 element by composition.
Orient gdsOrient(bool reflect, int angleDeg) {
  Orient rot = Orient::R0;
  switch (((angleDeg % 360) + 360) % 360) {
    case 0:   rot = Orient::R0; break;
    case 90:  rot = Orient::R90; break;
    case 180: rot = Orient::R180; break;
    case 270: rot = Orient::R270; break;
    default:  throw GdsError("GDSII: non-Manhattan SREF angle");
  }
  return reflect ? composeOrient(rot, Orient::MX) : rot;
}

// Inverse mapping for the writer.
std::pair<bool, int> orientToGds(Orient o) {
  for (const bool reflect : {false, true})
    for (const int angle : {0, 90, 180, 270})
      if (gdsOrient(reflect, angle) == o) return {reflect, angle};
  throw GdsError("GDSII: unmappable orientation");  // unreachable
}

}  // namespace

CellLibrary readGdsiiHierarchy(std::istream& is) {
  std::map<std::string, Struct> strs;
  std::vector<std::string> order;
  parseStructs(is, strs, order);
  if (order.empty()) throw GdsError("GDSII: no structures");

  CellLibrary lib;
  for (const std::string& name : order) {
    Cell& cell = lib.addCell(name);
    const Struct& s = strs[name];
    for (const BoundaryEl& b : s.boundaries) {
      std::vector<Point> pts = b.pts;
      if (!pts.empty() && pts.front() == pts.back()) pts.pop_back();
      cell.addPolygon(b.layer, Polygon(std::move(pts)));
    }
    for (const PathEl& pe : s.paths)
      for (const Rect& r : pathToRects(pe)) cell.addRect(pe.layer, r);
    for (const RefEl& r : s.refs) {
      Instance inst;
      inst.cellName = r.sname;
      inst.transform.orient = gdsOrient(r.reflect, r.angleDeg);
      inst.transform.offset = r.origin;
      inst.cols = std::size_t(std::max(r.cols, 1));
      inst.rows = std::size_t(std::max(r.rows, 1));
      inst.colStep = r.colStep;
      inst.rowStep = r.rowStep;
      cell.addInstance(std::move(inst));
    }
  }

  // Top cell: never referenced (ties broken by definition order).
  std::set<std::string> referenced;
  for (const auto& [name, s] : strs)
    for (const RefEl& r : s.refs) referenced.insert(r.sname);
  for (const std::string& name : order) {
    if (referenced.count(name) == 0) {
      lib.setTop(name);
      break;
    }
  }
  return lib;
}

CellLibrary readGdsiiHierarchyFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw GdsError("GDSII: cannot open " + path);
  return readGdsiiHierarchy(is);
}

Layout readGdsii(std::istream& is) { return readGdsiiHierarchy(is).flatten(); }

Layout readGdsiiFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw GdsError("GDSII: cannot open " + path);
  return readGdsii(is);
}

namespace {

void putU16(std::ostream& os, std::uint16_t v) {
  const char b[2] = {char(v >> 8), char(v & 0xff)};
  os.write(b, 2);
}

void putRecord(std::ostream& os, std::uint16_t type,
               const std::vector<std::uint8_t>& data = {}) {
  putU16(os, std::uint16_t(4 + data.size()));
  putU16(os, type);
  os.write(reinterpret_cast<const char*>(data.data()),
           std::streamsize(data.size()));
}

std::vector<std::uint8_t> strData(const std::string& s) {
  std::vector<std::uint8_t> d(s.begin(), s.end());
  if (d.size() % 2) d.push_back(0);
  return d;
}

std::vector<std::uint8_t> i16Data(std::initializer_list<std::int16_t> vals) {
  std::vector<std::uint8_t> d;
  for (const std::int16_t v : vals) {
    d.push_back(std::uint8_t(std::uint16_t(v) >> 8));
    d.push_back(std::uint8_t(std::uint16_t(v) & 0xff));
  }
  return d;
}

std::vector<std::uint8_t> real8Data(std::initializer_list<double> vals) {
  std::vector<std::uint8_t> d;
  for (const double v : vals) {
    const std::uint64_t raw = encodeReal8(v);
    for (int b = 7; b >= 0; --b)
      d.push_back(std::uint8_t((raw >> (8 * b)) & 0xff));
  }
  return d;
}

void push32(std::vector<std::uint8_t>& xy, std::int64_t v) {
  const auto u = std::uint32_t(std::int32_t(v));
  xy.push_back(std::uint8_t(u >> 24));
  xy.push_back(std::uint8_t((u >> 16) & 0xff));
  xy.push_back(std::uint8_t((u >> 8) & 0xff));
  xy.push_back(std::uint8_t(u & 0xff));
}

void putBoundary(std::ostream& os, LayerId layer, const Polygon& poly) {
  if (poly.empty()) return;
  putRecord(os, kBoundary);
  putRecord(os, kLayer, i16Data({std::int16_t(layer)}));
  putRecord(os, kDataType, i16Data({0}));
  std::vector<std::uint8_t> xy;
  for (const Point& p : poly.points()) {
    push32(xy, p.x);
    push32(xy, p.y);
  }
  push32(xy, poly.points().front().x);  // close the loop
  push32(xy, poly.points().front().y);
  putRecord(os, kXy, xy);
  putRecord(os, kEndEl);
}

void putLibHeader(std::ostream& os, const WriteOptions& opt) {
  putRecord(os, kHeader, i16Data({600}));
  putRecord(os, kBgnLib,
            i16Data({2026, 1, 1, 0, 0, 0, 2026, 1, 1, 0, 0, 0}));
  putRecord(os, kLibName, strData(opt.libName));
  putRecord(os, kUnits, real8Data({opt.userUnitDbu, opt.dbuMeters}));
}

void putStrHeader(std::ostream& os, const std::string& name) {
  putRecord(os, kBgnStr,
            i16Data({2026, 1, 1, 0, 0, 0, 2026, 1, 1, 0, 0, 0}));
  putRecord(os, kStrName, strData(name));
}

}  // namespace

void writeGdsii(std::ostream& os, const Layout& layout,
                const WriteOptions& opt) {
  putLibHeader(os, opt);
  putStrHeader(os, layout.name().empty() ? "TOP" : layout.name());
  for (const auto& [layerId, layer] : layout.layers())
    for (const Polygon& poly : layer.polygons()) putBoundary(os, layerId, poly);
  putRecord(os, kEndStr);
  putRecord(os, kEndLib);
}

void writeGdsiiFile(const std::string& path, const Layout& layout,
                    const WriteOptions& opt) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw GdsError("GDSII: cannot open " + path + " for writing");
  writeGdsii(os, layout, opt);
}

void writeGdsiiHierarchy(std::ostream& os, const CellLibrary& lib,
                         const WriteOptions& opt) {
  putLibHeader(os, opt);
  // Children before parents is not required by the format; definition
  // order is simply the library's map order, except the top cell last
  // (cosmetic convention).
  std::vector<const Cell*> cells;
  for (const auto& [name, cell] : lib.cells())
    if (name != lib.top()) cells.push_back(&cell);
  if (const Cell* top = lib.findCell(lib.top())) cells.push_back(top);

  for (const Cell* cell : cells) {
    putStrHeader(os, cell->name());
    for (const auto& [layerId, polys] : cell->geometry())
      for (const Polygon& poly : polys) putBoundary(os, layerId, poly);
    for (const Instance& inst : cell->instances()) {
      const auto [reflect, angle] = orientToGds(inst.transform.orient);
      const bool isArray = inst.cols > 1 || inst.rows > 1;
      putRecord(os, isArray ? kAref : kSref);
      putRecord(os, kSname, strData(inst.cellName));
      if (reflect || angle != 0) {
        putRecord(os, kStrans,
                  i16Data({std::int16_t(reflect ? 0x8000 : 0)}));
        if (angle != 0) putRecord(os, kAngle, real8Data({double(angle)}));
      }
      std::vector<std::uint8_t> xy;
      push32(xy, inst.transform.offset.x);
      push32(xy, inst.transform.offset.y);
      if (isArray) {
        putRecord(os, kColRow, i16Data({std::int16_t(inst.cols),
                                        std::int16_t(inst.rows)}));
        push32(xy, inst.transform.offset.x + Coord(inst.cols) * inst.colStep.x);
        push32(xy, inst.transform.offset.y + Coord(inst.cols) * inst.colStep.y);
        push32(xy, inst.transform.offset.x + Coord(inst.rows) * inst.rowStep.x);
        push32(xy, inst.transform.offset.y + Coord(inst.rows) * inst.rowStep.y);
      }
      putRecord(os, kXy, xy);
      putRecord(os, kEndEl);
    }
    putRecord(os, kEndStr);
  }
  putRecord(os, kEndLib);
}

void writeGdsiiHierarchyFile(const std::string& path, const CellLibrary& lib,
                             const WriteOptions& opt) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw GdsError("GDSII: cannot open " + path + " for writing");
  writeGdsiiHierarchy(os, lib, opt);
}

}  // namespace hsd::gds
