#include "gds/ascii.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "gds/gdsii.hpp"  // GdsError

namespace hsd::gds {

void writeAsciiLayout(std::ostream& os, const Layout& layout) {
  os << "layout " << (layout.name().empty() ? "TOP" : layout.name()) << '\n';
  for (const auto& [id, layer] : layout.layers()) {
    os << "layer " << id << '\n';
    for (const Polygon& p : layer.polygons()) {
      const auto& pts = p.points();
      if (pts.size() == 4 && p.bbox().area() == p.area()) {
        const Rect r = p.bbox();
        os << "rect " << r.lo.x << ' ' << r.lo.y << ' ' << r.hi.x << ' '
           << r.hi.y << '\n';
      } else {
        os << "poly " << pts.size();
        for (const Point& pt : pts) os << ' ' << pt.x << ' ' << pt.y;
        os << '\n';
      }
    }
  }
}

Layout readAsciiLayout(std::istream& is) {
  Layout out;
  LayerId layer = 0;
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw) || kw[0] == '#') continue;
    if (kw == "layout") {
      std::string name;
      ss >> name;
      out.setName(name);
    } else if (kw == "layer") {
      int id = 0;
      ss >> id;
      layer = LayerId(id);
    } else if (kw == "rect") {
      Coord x1, y1, x2, y2;
      if (!(ss >> x1 >> y1 >> x2 >> y2))
        throw GdsError("ascii layout: bad rect line: " + line);
      out.addRect(layer, Rect{x1, y1, x2, y2});
    } else if (kw == "poly") {
      std::size_t n = 0;
      ss >> n;
      std::vector<Point> pts(n);
      for (Point& p : pts)
        if (!(ss >> p.x >> p.y))
          throw GdsError("ascii layout: bad poly line: " + line);
      out.addPolygon(layer, Polygon(std::move(pts)));
    } else {
      throw GdsError("ascii layout: unknown keyword " + kw);
    }
  }
  return out;
}

void writeAsciiLayoutFile(const std::string& path, const Layout& layout) {
  std::ofstream os(path);
  if (!os) throw GdsError("cannot open " + path + " for writing");
  writeAsciiLayout(os, layout);
}

Layout readAsciiLayoutFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw GdsError("cannot open " + path);
  return readAsciiLayout(is);
}

void writeClipSet(std::ostream& os, const ClipSet& set) {
  os << "clipset " << (set.name.empty() ? "clips" : set.name) << ' '
     << set.params.coreSide << ' ' << set.params.clipSide << '\n';
  for (const Clip& c : set.clips) {
    os << "clip " << int(c.label()) << ' ' << c.window().core.lo.x << ' '
       << c.window().core.lo.y << '\n';
    for (const LayerId id : c.layerIds()) {
      os << "layer " << id << '\n';
      for (const Rect& r : c.rectsOn(id))
        os << "rect " << r.lo.x << ' ' << r.lo.y << ' ' << r.hi.x << ' '
           << r.hi.y << '\n';
    }
    os << "endclip\n";
  }
}

ClipSet readClipSet(std::istream& is) {
  ClipSet set;
  std::string line;
  Clip cur;
  std::vector<Rect> rects;
  LayerId layer = 0;
  bool inClip = false;

  auto flushLayer = [&] {
    if (!rects.empty()) {
      cur.setRects(layer, std::move(rects));
      rects.clear();
    }
  };

  while (std::getline(is, line)) {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw) || kw[0] == '#') continue;
    if (kw == "clipset") {
      ss >> set.name >> set.params.coreSide >> set.params.clipSide;
    } else if (kw == "clip") {
      int label = 0;
      Point coreLo;
      if (!(ss >> label >> coreLo.x >> coreLo.y))
        throw GdsError("clipset: bad clip line: " + line);
      cur = Clip(ClipWindow::atCore(coreLo, set.params), Label(label));
      inClip = true;
    } else if (kw == "layer") {
      flushLayer();
      int id = 0;
      ss >> id;
      layer = LayerId(id);
    } else if (kw == "rect") {
      Coord x1, y1, x2, y2;
      if (!(ss >> x1 >> y1 >> x2 >> y2))
        throw GdsError("clipset: bad rect line: " + line);
      rects.push_back(Rect{x1, y1, x2, y2});
    } else if (kw == "endclip") {
      if (!inClip) throw GdsError("clipset: endclip without clip");
      flushLayer();
      set.clips.push_back(std::move(cur));
      cur = Clip();
      inClip = false;
    } else {
      throw GdsError("clipset: unknown keyword " + kw);
    }
  }
  if (inClip) throw GdsError("clipset: missing final endclip");
  return set;
}

void writeClipSetFile(const std::string& path, const ClipSet& set) {
  std::ofstream os(path);
  if (!os) throw GdsError("cannot open " + path + " for writing");
  writeClipSet(os, set);
}

ClipSet readClipSetFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw GdsError("cannot open " + path);
  return readClipSet(is);
}

void writeWindowList(std::ostream& os, const std::vector<ClipWindow>& wins,
                     const ClipParams& params) {
  os << "windows " << params.coreSide << ' ' << params.clipSide << '\n';
  for (const ClipWindow& w : wins)
    os << "at " << w.core.lo.x << ' ' << w.core.lo.y << '\n';
}

std::pair<std::vector<ClipWindow>, ClipParams> readWindowList(
    std::istream& is) {
  std::vector<ClipWindow> wins;
  ClipParams params;
  std::string line;
  bool sawHeader = false;
  while (std::getline(is, line)) {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw) || kw[0] == '#') continue;
    if (kw == "windows") {
      if (!(ss >> params.coreSide >> params.clipSide))
        throw GdsError("window list: bad header: " + line);
      sawHeader = true;
    } else if (kw == "at") {
      Point p;
      if (!(ss >> p.x >> p.y))
        throw GdsError("window list: bad at line: " + line);
      wins.push_back(ClipWindow::atCore(p, params));
    } else {
      throw GdsError("window list: unknown keyword " + kw);
    }
  }
  if (!sawHeader) throw GdsError("window list: missing header");
  return {std::move(wins), params};
}

void writeWindowListFile(const std::string& path,
                         const std::vector<ClipWindow>& wins,
                         const ClipParams& params) {
  std::ofstream os(path);
  if (!os) throw GdsError("cannot open " + path + " for writing");
  writeWindowList(os, wins, params);
}

std::pair<std::vector<ClipWindow>, ClipParams> readWindowListFile(
    const std::string& path) {
  std::ifstream is(path);
  if (!is) throw GdsError("cannot open " + path);
  return readWindowList(is);
}

}  // namespace hsd::gds
