// Human-readable text formats for layouts and clip sets. Used for test
// fixtures, example data and benchmark persistence; GDSII remains the
// interchange format for layouts.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "layout/clip.hpp"
#include "layout/layout.hpp"

namespace hsd::gds {

/// Write/read a layout as text:
///   layout <name>
///   layer <id>
///   rect x1 y1 x2 y2
///   poly <n> x1 y1 ... xn yn
void writeAsciiLayout(std::ostream& os, const Layout& layout);
Layout readAsciiLayout(std::istream& is);
void writeAsciiLayoutFile(const std::string& path, const Layout& layout);
Layout readAsciiLayoutFile(const std::string& path);

/// A labeled clip training/testing set plus its geometry parameters.
struct ClipSet {
  std::string name;
  ClipParams params;
  std::vector<Clip> clips;
};

/// Write/read a clip set as text:
///   clipset <name> <coreSide> <clipSide>
///   clip <label:+1|-1|0> <coreLoX> <coreLoY>
///   layer <id>
///   rect x1 y1 x2 y2   (absolute coordinates)
///   endclip
void writeClipSet(std::ostream& os, const ClipSet& set);
ClipSet readClipSet(std::istream& is);
void writeClipSetFile(const std::string& path, const ClipSet& set);
ClipSet readClipSetFile(const std::string& path);

/// Hotspot report / golden list: clip windows by core lower-left corner.
///   windows <coreSide> <clipSide>
///   at <coreLoX> <coreLoY>
void writeWindowList(std::ostream& os, const std::vector<ClipWindow>& wins,
                     const ClipParams& params);
std::pair<std::vector<ClipWindow>, ClipParams> readWindowList(
    std::istream& is);
void writeWindowListFile(const std::string& path,
                         const std::vector<ClipWindow>& wins,
                         const ClipParams& params);
std::pair<std::vector<ClipWindow>, ClipParams> readWindowListFile(
    const std::string& path);

}  // namespace hsd::gds
