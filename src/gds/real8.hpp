// GDSII 8-byte excess-64 base-16 floating point ("real8") conversion.
// Layout: sign bit, 7-bit exponent E (value = mantissa * 16^(E-64)),
// 56-bit mantissa interpreted as a binary fraction in [1/16, 1).
#pragma once

#include <cmath>
#include <cstdint>

namespace hsd::gds {

/// Decode a GDSII real8 (given as the 8 raw big-endian bytes packed into a
/// uint64, most significant byte first) to a double.
inline double decodeReal8(std::uint64_t raw) {
  if ((raw & 0x7fffffffffffffffULL) == 0) return 0.0;
  const bool neg = (raw >> 63) & 1;
  const int exponent = int((raw >> 56) & 0x7f) - 64;
  const std::uint64_t mant = raw & 0x00ffffffffffffffULL;
  double v = double(mant) / 72057594037927936.0;  // 2^56
  v *= std::pow(16.0, exponent);
  return neg ? -v : v;
}

/// Encode a double as a GDSII real8 (returned packed big-endian in uint64).
inline std::uint64_t encodeReal8(double v) {
  if (v == 0.0) return 0;
  std::uint64_t sign = 0;
  if (v < 0) {
    sign = 1ULL << 63;
    v = -v;
  }
  int exponent = 0;
  // Normalize so v in [1/16, 1).
  while (v >= 1.0) {
    v /= 16.0;
    ++exponent;
  }
  while (v < 1.0 / 16.0) {
    v *= 16.0;
    --exponent;
  }
  const auto mant = std::uint64_t(v * 72057594037927936.0 + 0.5);  // 2^56
  return sign | (std::uint64_t(exponent + 64) << 56) |
         (mant & 0x00ffffffffffffffULL);
}

}  // namespace hsd::gds
