// Minimal-but-real GDSII stream reader/writer, replacing the proprietary
// Anuvad library the paper used. Supports BOUNDARY and PATH elements,
// structure hierarchies flattened through SREF/AREF with Manhattan
// transforms (90-degree angles, optional reflection).
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "layout/hierarchy.hpp"
#include "layout/layout.hpp"

namespace hsd::gds {

/// Error while parsing or writing a GDSII stream.
class GdsError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Options controlling GDSII export.
struct WriteOptions {
  std::string libName = "HSDLIB";
  /// Database unit in meters; 1e-9 == 1 dbu = 1 nm (project convention).
  double dbuMeters = 1e-9;
  /// User unit in database units (GDS "units in user units" field).
  double userUnitDbu = 1e-3;
};

/// Write `layout` as a single-structure GDSII stream.
void writeGdsii(std::ostream& os, const Layout& layout,
                const WriteOptions& opt = {});
void writeGdsiiFile(const std::string& path, const Layout& layout,
                    const WriteOptions& opt = {});

/// Read a GDSII stream, flattening the hierarchy under the top structure
/// (the structure that is never referenced; ties broken by first defined).
/// PATH elements are converted to rectangles (Manhattan segments only).
Layout readGdsii(std::istream& is);
Layout readGdsiiFile(const std::string& path);

/// Read a GDSII stream preserving the structure hierarchy: every GDS
/// structure becomes a Cell; SREF/AREF become Instances (Manhattan
/// transforms only). The top cell is the unreferenced structure.
CellLibrary readGdsiiHierarchy(std::istream& is);
CellLibrary readGdsiiHierarchyFile(const std::string& path);

/// Write a cell library with full hierarchy (SREF/AREF records).
void writeGdsiiHierarchy(std::ostream& os, const CellLibrary& lib,
                         const WriteOptions& opt = {});
void writeGdsiiHierarchyFile(const std::string& path, const CellLibrary& lib,
                             const WriteOptions& opt = {});

}  // namespace hsd::gds
