// Minimal, dependency-free HTTP/1.1 transport (POSIX sockets, blocking
// I/O) — the listener behind obs::AdminServer and every later
// remote-serving surface. Deliberately small: exact-path GET/HEAD
// routing, bounded request parsing, optional keep-alive, and a graceful
// stop. Not a general web server; it serves trusted operator traffic on
// a loopback/infra port.
//
// Threading model: one acceptor thread poll()s the listening socket and
// feeds accepted connections to a small fixed pool of handler threads
// (bounded queue). Each handler thread owns one connection at a time and
// runs its request/response loop to completion. stop() is graceful in
// the drain sense: the acceptor stops accepting, queued-but-unserved
// connections are closed, in-flight requests finish and write their
// responses (their read side is shutdown(2) so keep-alive loops exit),
// then the threads are joined. Handlers may be called concurrently from
// several threads — route handlers must be thread-safe.
//
// Parsing limits (all configurable): request line + headers are capped
// at maxHeaderBytes (431 when exceeded), bodies at maxBodyBytes (413),
// and only GET/HEAD are routed (405 otherwise). Malformed requests get
// a 400. Every limit violation closes the connection after the error
// response — a client that overflows a limit never gets keep-alive.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

namespace hsd::net {

/// One parsed request. Header names are lower-cased at parse time;
/// values keep their bytes (leading/trailing whitespace trimmed).
struct HttpRequest {
  std::string method;   ///< e.g. "GET" (upper-case as sent)
  std::string target;   ///< raw request target, e.g. "/tracez?limit=10"
  std::string path;     ///< target up to '?', e.g. "/tracez"
  std::string query;    ///< target after '?', e.g. "limit=10" ("" if none)
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with this (lower-case) name, or nullptr.
  const std::string* header(std::string_view lowerName) const;
  /// Value of `key` in the query string ("" when absent; no %-decoding —
  /// admin endpoints use plain numeric/identifier params).
  std::string queryParam(std::string_view key) const;
};

struct HttpResponse {
  int status = 200;
  std::string contentType = "text/plain; charset=utf-8";
  std::string body;
  bool closeConnection = false;  ///< force Connection: close

  static HttpResponse text(int status, std::string body);
  static HttpResponse json(std::string body);
};

/// Canonical reason phrase ("OK", "Not Found", ...; "Unknown" fallback).
const char* statusReason(int status);

struct HttpServerOptions {
  std::uint16_t port = 0;            ///< 0 = ephemeral, read back via port()
  std::string bindAddress = "127.0.0.1";  ///< numeric IPv4
  std::size_t handlerThreads = 2;
  std::size_t maxHeaderBytes = 16 * 1024;
  std::size_t maxBodyBytes = 1 << 20;
  std::size_t maxQueuedConnections = 64;  ///< accepted-but-unserved cap
  bool keepAlive = true;
  /// Per-recv/send timeout; also bounds how long stop() can block on an
  /// idle keep-alive connection that never saw the shutdown(2).
  int ioTimeoutMs = 2000;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerOptions opts = {});
  ~HttpServer();  ///< stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register an exact-path route. Call before start(); handlers run
  /// concurrently on the handler pool and must be thread-safe. A handler
  /// that throws produces a 500 with the exception message.
  void handle(std::string path, Handler handler);

  /// Bind, listen, and spawn the acceptor + handler threads. Throws
  /// std::runtime_error on socket/bind/listen failure. Call once.
  void start();

  /// The bound port (the chosen one when options.port was 0); 0 before
  /// start().
  std::uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Registered route paths, in registration order (the "/" index and
  /// 404 bodies list these).
  std::vector<std::string> routes() const;

  /// Graceful stop: stop accepting, close queued connections, let
  /// in-flight requests finish their response, join all threads.
  /// Idempotent.
  void stop();

 private:
  void acceptLoop();
  void handlerLoop();
  void serveConnection(int fd);
  /// Reads one request from fd into req, carrying leftover bytes across
  /// keep-alive requests in `buf`. Returns true on success; on failure
  /// sets errStatus (0 = clean close / timeout, no response owed).
  bool readRequest(int fd, std::string& buf, HttpRequest& req,
                   int& errStatus);
  void writeResponse(int fd, const HttpResponse& res, bool keepAlive,
                     bool headOnly);
  HttpResponse dispatch(const HttpRequest& req);

  HttpServerOptions opts_;
  int listenFd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::vector<std::pair<std::string, Handler>> routes_;  ///< registration order

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> pending_;             ///< accepted fds awaiting a handler
  std::unordered_set<int> active_;      ///< fds currently being served

  std::thread acceptor_;
  std::vector<std::thread> handlers_;
};

/// Result of one client GET. `status` is 0 only on transport failure
/// paths that throw instead, so a returned result always has a parsed
/// status line.
struct HttpGetResult {
  int status = 0;
  std::string body;
  std::string contentType;

  bool ok() const { return status >= 200 && status < 300; }
};

/// Minimal blocking HTTP/1.1 GET (Connection: close, numeric IPv4 host).
/// The curl-free scrape path of tests and tools_smoke.sh (via
/// tools/hsd_scrape). Throws std::runtime_error on connect/socket/parse
/// failure; HTTP-level errors come back as the status code.
HttpGetResult httpGet(const std::string& host, std::uint16_t port,
                      const std::string& target, int timeoutMs = 5000);

}  // namespace hsd::net
