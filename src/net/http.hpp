// Minimal, dependency-free HTTP/1.1 transport (POSIX sockets, blocking
// I/O) — the listener behind obs::AdminServer and the detection wire
// plane (serve::DetectionEndpoint). Deliberately small: exact-path
// GET/HEAD/POST routing, bounded request parsing (including chunked
// uploads), optional keep-alive, and a graceful stop. Not a general web
// server; it serves trusted operator traffic on a loopback/infra port.
//
// Threading model: one acceptor thread poll()s the listening socket and
// feeds accepted connections to a small fixed pool of handler threads
// (bounded queue). Each handler thread owns one connection at a time and
// runs its request/response loop to completion. stop() is graceful in
// the drain sense: the acceptor stops accepting, queued-but-unserved
// connections are closed, in-flight requests finish and write their
// responses (their read side is shutdown(2) so keep-alive loops exit),
// then the threads are joined. Handlers may be called concurrently from
// several threads — route handlers must be thread-safe.
//
// Parsing limits (all configurable): request line + headers are capped
// at maxHeaderBytes (431 when exceeded), bodies — Content-Length or
// chunked — at maxBodyBytes (413), and malformed requests get a 400.
//
// Connection-close contract, by error class:
//  - transport/parse errors (400 malformed request or chunk framing,
//    413 oversized body, 431 oversized headers) CLOSE the connection:
//    the request stream cannot be resynchronized past them;
//  - application responses — whatever their status (404, 405, 429, 504,
//    handler 500, ...) — honor keep-alive: the request was fully read,
//    so the connection stays usable unless the handler sets
//    closeConnection (or the client sent Connection: close).
//
// Method routing: a path registered via handle() answers GET and HEAD;
// handlePost() registers POST. A request for a known path with the wrong
// method gets 405 with an Allow header listing the path's methods; 404
// is reserved for unknown paths (405-before-404 precedence).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

namespace hsd::net {

/// One parsed request. Header names are lower-cased at parse time;
/// values keep their bytes (leading/trailing whitespace trimmed).
struct HttpRequest {
  std::string method;   ///< e.g. "GET" (upper-case as sent)
  std::string target;   ///< raw request target, e.g. "/tracez?limit=10"
  std::string path;     ///< target up to '?', e.g. "/tracez"
  std::string query;    ///< target after '?', e.g. "limit=10" ("" if none)
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;     ///< decoded (chunked bodies are de-framed)
  /// Connected client socket for the duration of the handler call, -1
  /// outside one. Long-running handlers may probe it for an early client
  /// disconnect (recv MSG_PEEK|MSG_DONTWAIT == 0) to cancel server-side
  /// work; they must never read or write it.
  int clientFd = -1;

  /// First header with this (lower-case) name, or nullptr.
  const std::string* header(std::string_view lowerName) const;
  /// Value of `key` in the query string ("" when absent; no %-decoding —
  /// endpoints use plain numeric/identifier params).
  std::string queryParam(std::string_view key) const;
};

struct HttpResponse {
  int status = 200;
  std::string contentType = "text/plain; charset=utf-8";
  std::string body;
  bool closeConnection = false;  ///< force Connection: close
  /// Extra response headers (Retry-After, X-Request-Id, ...). The server
  /// owns Content-Type, Content-Length and Connection — do not set those
  /// here.
  std::vector<std::pair<std::string, std::string>> headers;

  static HttpResponse text(int status, std::string body);
  static HttpResponse json(std::string body);
  HttpResponse& withHeader(std::string name, std::string value);
};

/// Canonical reason phrase ("OK", "Not Found", ...; "Unknown" fallback).
const char* statusReason(int status);

struct HttpServerOptions {
  std::uint16_t port = 0;            ///< 0 = ephemeral, read back via port()
  std::string bindAddress = "127.0.0.1";  ///< numeric IPv4
  std::size_t handlerThreads = 2;
  std::size_t maxHeaderBytes = 16 * 1024;
  std::size_t maxBodyBytes = 1 << 20;
  std::size_t maxQueuedConnections = 64;  ///< accepted-but-unserved cap
  bool keepAlive = true;
  /// Per-recv/send timeout; also bounds how long stop() can block on an
  /// idle keep-alive connection that never saw the shutdown(2).
  int ioTimeoutMs = 2000;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerOptions opts = {});
  ~HttpServer();  ///< stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register an exact-path GET route (HEAD is answered from it with the
  /// body suppressed). Call before start(); handlers run concurrently on
  /// the handler pool and must be thread-safe. A handler that throws
  /// produces a 500 with the exception message.
  void handle(std::string path, Handler handler);

  /// Register an exact-path POST route. Same rules as handle(); the
  /// request body (Content-Length or chunked, capped at maxBodyBytes) is
  /// fully read and decoded before the handler runs.
  void handlePost(std::string path, Handler handler);

  /// Bind, listen, and spawn the acceptor + handler threads. Throws
  /// std::runtime_error on socket/bind/listen failure. Call once.
  void start();

  /// The bound port (the chosen one when options.port was 0); 0 before
  /// start().
  std::uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// True once stop() has begun (in-flight handlers may still be
  /// finishing). Handlers probing clientFd for client disconnects must
  /// not treat EOF as a disconnect while draining — stop() shuts the
  /// read side of every active connection down to unblock reads.
  bool draining() const { return stopping_.load(std::memory_order_acquire); }

  /// Registered route paths, in registration order (the "/" index and
  /// 404 bodies list these).
  std::vector<std::string> routes() const;

  /// Graceful stop: stop accepting, close queued connections, let
  /// in-flight requests finish their response, join all threads.
  /// Idempotent.
  void stop();

 private:
  enum class Method { kGet, kPost };

  struct Route {
    Method method;
    std::string path;
    Handler handler;
  };

  void addRoute(Method method, std::string path, Handler handler);
  void acceptLoop();
  void handlerLoop();
  void serveConnection(int fd);
  /// Reads one request from fd into req, carrying leftover bytes across
  /// keep-alive requests in `buf`. Returns true on success; on failure
  /// sets errStatus (0 = clean close / timeout, no response owed).
  bool readRequest(int fd, std::string& buf, HttpRequest& req,
                   int& errStatus);
  /// De-frames a chunked body starting at buf[bodyStart], filling
  /// req.body and erasing the consumed bytes from buf. Returns false with
  /// errStatus set (400 bad framing / 413 over cap) on failure.
  bool readChunkedBody(int fd, std::string& buf, std::size_t bodyStart,
                       HttpRequest& req, int& errStatus);
  void writeResponse(int fd, const HttpResponse& res, bool keepAlive,
                     bool headOnly);
  HttpResponse dispatch(const HttpRequest& req);

  HttpServerOptions opts_;
  int listenFd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::vector<Route> routes_;  ///< registration order

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> pending_;             ///< accepted fds awaiting a handler
  std::unordered_set<int> active_;      ///< fds currently being served

  std::thread acceptor_;
  std::vector<std::thread> handlers_;
};

/// Result of one client request. `status` is 0 only on transport failure
/// paths that throw instead, so a returned result always has a parsed
/// status line. Header names are lower-cased.
struct HttpResult {
  int status = 0;
  std::string body;
  std::string contentType;
  std::vector<std::pair<std::string, std::string>> headers;

  bool ok() const { return status >= 200 && status < 300; }
  /// First response header with this (lower-case) name, or nullptr.
  const std::string* header(std::string_view lowerName) const;
};

/// Back-compat alias (the client grew POST support and header capture).
using HttpGetResult = HttpResult;

/// Minimal blocking HTTP/1.1 GET (Connection: close, numeric IPv4 host).
/// The curl-free scrape path of tests and tools_smoke.sh (via
/// tools/hsd_scrape). `extraHeaders` are sent verbatim after
/// Host/Connection. Throws std::runtime_error on connect/socket/parse
/// failure; HTTP-level errors come back as the status code.
HttpResult httpGet(
    const std::string& host, std::uint16_t port, const std::string& target,
    int timeoutMs = 5000,
    const std::vector<std::pair<std::string, std::string>>& extraHeaders = {});

/// Minimal blocking HTTP/1.1 POST (Connection: close). `extraHeaders`
/// are sent verbatim after Host/Content-Type/Content-Length. Same error
/// contract as httpGet.
HttpResult httpPost(
    const std::string& host, std::uint16_t port, const std::string& target,
    const std::string& body,
    const std::string& contentType = "application/octet-stream",
    const std::vector<std::pair<std::string, std::string>>& extraHeaders = {},
    int timeoutMs = 30000);

}  // namespace hsd::net
