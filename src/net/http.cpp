#include "net/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace hsd::net {

namespace {

std::string toLower(std::string s) {
  for (char& c : s) c = char(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

void setSocketTimeouts(int fd, int timeoutMs) {
  timeval tv{};
  tv.tv_sec = timeoutMs / 1000;
  tv.tv_usec = (timeoutMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// send() the whole buffer; false on error/timeout. MSG_NOSIGNAL keeps a
/// peer that hung up from killing the process with SIGPIPE.
bool sendAll(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += std::size_t(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// recv() once into buf; true when bytes arrived. EINTR retries; every
/// other failure (timeout, reset, EOF) is false.
bool recvSome(int fd, std::string& buf) {
  for (;;) {
    char chunk[4096];
    const ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r > 0) {
      buf.append(chunk, std::size_t(r));
      return true;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
}

bool parseRequestHead(std::string_view head, HttpRequest& req) {
  // Request line: METHOD SP TARGET SP VERSION. Lines are CRLF-separated;
  // we tolerate bare LF (trim strips the CR).
  const std::size_t eol = head.find('\n');
  const std::string_view line =
      trim(eol == std::string_view::npos ? head : head.substr(0, eol));
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) return false;
  req.method = std::string(line.substr(0, sp1));
  req.target = std::string(trim(line.substr(sp1 + 1, sp2 - sp1 - 1)));
  req.version = std::string(line.substr(sp2 + 1));
  if (req.method.empty() || req.target.empty() ||
      req.target.front() != '/' ||
      req.version.compare(0, 5, "HTTP/") != 0)
    return false;
  const std::size_t qm = req.target.find('?');
  req.path = req.target.substr(0, qm);
  req.query = qm == std::string::npos ? std::string()
                                      : req.target.substr(qm + 1);
  // Header fields, one per line, until the blank line (already excluded
  // from `head` by the caller).
  std::size_t pos = eol == std::string_view::npos ? head.size() : eol + 1;
  while (pos < head.size()) {
    std::size_t end = head.find('\n', pos);
    if (end == std::string_view::npos) end = head.size();
    const std::string_view raw = trim(head.substr(pos, end - pos));
    pos = end + 1;
    if (raw.empty()) continue;
    const std::size_t colon = raw.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    req.headers.emplace_back(toLower(std::string(trim(raw.substr(0, colon)))),
                             std::string(trim(raw.substr(colon + 1))));
  }
  return true;
}

bool wantsKeepAlive(const HttpRequest& req) {
  const std::string* conn = req.header("connection");
  if (conn != nullptr) {
    const std::string v = toLower(*conn);
    if (v.find("close") != std::string::npos) return false;
    if (v.find("keep-alive") != std::string::npos) return true;
  }
  return req.version == "HTTP/1.1";  // 1.1 defaults to persistent
}

}  // namespace

const std::string* HttpRequest::header(std::string_view lowerName) const {
  for (const auto& [k, v] : headers)
    if (k == lowerName) return &v;
  return nullptr;
}

std::string HttpRequest::queryParam(std::string_view key) const {
  std::size_t pos = 0;
  while (pos <= query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const std::string_view pair =
        std::string_view(query).substr(pos, end - pos);
    const std::size_t eq = pair.find('=');
    const std::string_view k =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (k == key)
      return eq == std::string_view::npos
                 ? std::string()
                 : std::string(pair.substr(eq + 1));
    pos = end + 1;
  }
  return {};
}

HttpResponse HttpResponse::text(int status, std::string body) {
  HttpResponse res;
  res.status = status;
  res.body = std::move(body);
  return res;
}

HttpResponse HttpResponse::json(std::string body) {
  HttpResponse res;
  res.contentType = "application/json; charset=utf-8";
  res.body = std::move(body);
  return res;
}

HttpResponse& HttpResponse::withHeader(std::string name, std::string value) {
  headers.emplace_back(std::move(name), std::move(value));
  return *this;
}

const std::string* HttpResult::header(std::string_view lowerName) const {
  for (const auto& [k, v] : headers)
    if (k == lowerName) return &v;
  return nullptr;
}

const char* statusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 415: return "Unsupported Media Type";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

HttpServer::HttpServer(HttpServerOptions opts) : opts_(std::move(opts)) {
  opts_.handlerThreads = std::max<std::size_t>(1, opts_.handlerThreads);
  opts_.maxHeaderBytes = std::max<std::size_t>(128, opts_.maxHeaderBytes);
  opts_.maxQueuedConnections =
      std::max<std::size_t>(1, opts_.maxQueuedConnections);
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::addRoute(Method method, std::string path, Handler handler) {
  if (running())
    throw std::logic_error("HttpServer::handle: register routes before start");
  routes_.push_back(Route{method, std::move(path), std::move(handler)});
}

void HttpServer::handle(std::string path, Handler handler) {
  addRoute(Method::kGet, std::move(path), std::move(handler));
}

void HttpServer::handlePost(std::string path, Handler handler) {
  addRoute(Method::kPost, std::move(path), std::move(handler));
}

std::vector<std::string> HttpServer::routes() const {
  std::vector<std::string> out;
  out.reserve(routes_.size());
  for (const Route& r : routes_)
    if (std::find(out.begin(), out.end(), r.path) == out.end())
      out.push_back(r.path);
  return out;
}

void HttpServer::start() {
  if (running()) throw std::logic_error("HttpServer::start: already running");
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0)
    throw std::runtime_error(std::string("HttpServer: socket: ") +
                             std::strerror(errno));
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bindAddress.c_str(), &addr.sin_addr) != 1) {
    ::close(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error("HttpServer: bad bind address '" +
                             opts_.bindAddress + "' (numeric IPv4 required)");
  }
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listenFd_, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error("HttpServer: bind/listen on " +
                             opts_.bindAddress + ": " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0)
    port_ = ntohs(bound.sin_port);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { acceptLoop(); });
  handlers_.reserve(opts_.handlerThreads);
  for (std::size_t i = 0; i < opts_.handlerThreads; ++i)
    handlers_.emplace_back([this] { handlerLoop(); });
}

void HttpServer::stop() {
  if (!running()) return;
  stopping_.store(true, std::memory_order_release);
  // Wake blocked reads on in-flight keep-alive connections; their write
  // side stays open so a response in progress still goes out.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : active_) ::shutdown(fd, SHUT_RD);
  }
  cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& t : handlers_)
    if (t.joinable()) t.join();
  handlers_.clear();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : pending_) ::close(fd);  // accepted, never served
    pending_.clear();
  }
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void HttpServer::acceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listenFd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 50);  // 50ms bound on stop() latency
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;  // listener broken; handler threads still drain the queue
    }
    setSocketTimeouts(fd, opts_.ioTimeoutMs);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (pending_.size() >= opts_.maxQueuedConnections) {
        lock.unlock();
        ::close(fd);  // overloaded: shed instead of queueing unboundedly
        continue;
      }
      pending_.push_back(fd);
    }
    cv_.notify_one();
  }
}

void HttpServer::handlerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (pending_.empty()) return;  // stopping and nothing queued
      if (stopping_.load(std::memory_order_acquire)) return;  // shed queued
      fd = pending_.front();
      pending_.pop_front();
      active_.insert(fd);
    }
    serveConnection(fd);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      active_.erase(fd);
    }
    ::close(fd);
  }
}

bool HttpServer::readChunkedBody(int fd, std::string& buf,
                                 std::size_t bodyStart, HttpRequest& req,
                                 int& errStatus) {
  // De-frame "<hex-size>[;ext]\r\n<bytes>\r\n ... 0\r\n[trailers]\r\n",
  // enforcing maxBodyBytes on the decoded total. `pos` walks the raw
  // buffer; on success everything consumed is erased so keep-alive sees
  // the next request at buf[0].
  std::size_t pos = bodyStart;
  std::string body;
  // A line must appear within the raw cap; chunk framing overhead is
  // bounded, so cap the raw buffer at body + header slack to stop a
  // malicious endless-extension stream from growing memory unboundedly.
  const std::size_t rawCap =
      opts_.maxBodyBytes + opts_.maxHeaderBytes + (opts_.maxBodyBytes >> 2);
  const auto needBytes = [&](std::size_t upto) -> bool {
    while (buf.size() < upto) {
      if (buf.size() > rawCap) return false;
      if (!recvSome(fd, buf)) return false;
    }
    return true;
  };
  const auto readLine = [&](std::size_t from, std::size_t& eol) -> bool {
    for (;;) {
      eol = buf.find("\r\n", from);
      if (eol != std::string::npos) return true;
      if (buf.size() > rawCap) return false;
      if (!recvSome(fd, buf)) return false;
    }
  };
  for (;;) {
    std::size_t eol;
    if (!readLine(pos, eol)) {
      errStatus = 400;
      return false;
    }
    const std::string sizeLine = buf.substr(pos, eol - pos);
    // Chunk extensions (";name=value") are tolerated and ignored.
    const std::string sizeHex = sizeLine.substr(0, sizeLine.find(';'));
    char* end = nullptr;
    errno = 0;
    const unsigned long long size =
        std::strtoull(sizeHex.c_str(), &end, 16);
    if (end == sizeHex.c_str() || errno == ERANGE ||
        (end != nullptr && *trim(std::string_view(end)).data() != '\0' &&
         !trim(std::string_view(end)).empty())) {
      errStatus = 400;
      return false;
    }
    pos = eol + 2;
    if (size == 0) break;
    if (body.size() + size > opts_.maxBodyBytes) {
      errStatus = 413;
      return false;
    }
    if (!needBytes(pos + size + 2)) {
      errStatus = 400;
      return false;
    }
    body.append(buf, pos, std::size_t(size));
    if (buf.compare(pos + size, 2, "\r\n") != 0) {
      errStatus = 400;  // chunk data must end in CRLF
      return false;
    }
    pos += std::size_t(size) + 2;
  }
  // Trailer section: zero or more header lines, then an empty line.
  for (;;) {
    std::size_t eol;
    if (!readLine(pos, eol)) {
      errStatus = 400;
      return false;
    }
    const bool blank = eol == pos;
    pos = eol + 2;
    if (blank) break;
  }
  req.body = std::move(body);
  buf.erase(0, pos);  // keep-alive: leftover is the next request
  return true;
}

bool HttpServer::readRequest(int fd, std::string& buf, HttpRequest& req,
                             int& errStatus) {
  errStatus = 0;
  // Accumulate until the header terminator, enforcing the header cap.
  std::size_t headEnd;
  for (;;) {
    headEnd = buf.find("\r\n\r\n");
    if (headEnd != std::string::npos) break;
    if (buf.size() > opts_.maxHeaderBytes) {
      errStatus = 431;
      return false;
    }
    if (!recvSome(fd, buf)) {
      // Peer closed (or recv timed out / read side was shut down by
      // stop()). Bytes short of a full head mean a truncated request:
      // owe a 400 unless the connection is simply idle-closed.
      if (!buf.empty()) errStatus = 400;
      return false;
    }
  }
  if (headEnd > opts_.maxHeaderBytes) {
    errStatus = 431;
    return false;
  }
  req = HttpRequest();
  if (!parseRequestHead(std::string_view(buf).substr(0, headEnd), req)) {
    errStatus = 400;
    return false;
  }
  const std::size_t bodyStart = headEnd + 4;
  const std::string* te = req.header("transfer-encoding");
  if (te != nullptr) {
    if (toLower(*te).find("chunked") == std::string::npos ||
        req.header("content-length") != nullptr) {
      // Only chunked is implemented; Content-Length alongside
      // Transfer-Encoding is a smuggling vector — reject both.
      errStatus = 400;
      return false;
    }
    return readChunkedBody(fd, buf, bodyStart, req, errStatus);
  }
  std::size_t bodyLen = 0;
  if (const std::string* cl = req.header("content-length")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
    if (end == cl->c_str() || *end != '\0') {
      errStatus = 400;
      return false;
    }
    bodyLen = std::size_t(v);
  }
  if (bodyLen > opts_.maxBodyBytes) {
    errStatus = 413;
    return false;
  }
  while (buf.size() < bodyStart + bodyLen) {
    if (!recvSome(fd, buf)) {
      errStatus = 400;  // body shorter than Content-Length promised
      return false;
    }
  }
  req.body = buf.substr(bodyStart, bodyLen);
  buf.erase(0, bodyStart + bodyLen);  // keep-alive: leftover is next request
  return true;
}

void HttpServer::writeResponse(int fd, const HttpResponse& res,
                               bool keepAlive, bool headOnly) {
  std::string head = "HTTP/1.1 " + std::to_string(res.status) + ' ' +
                     statusReason(res.status) + "\r\nContent-Type: " +
                     res.contentType + "\r\nContent-Length: " +
                     std::to_string(res.body.size()) + "\r\nConnection: " +
                     (keepAlive ? "keep-alive" : "close") + "\r\n";
  for (const auto& [name, value] : res.headers)
    head += name + ": " + value + "\r\n";
  head += "\r\n";
  if (!sendAll(fd, head.data(), head.size())) return;
  if (!headOnly) sendAll(fd, res.body.data(), res.body.size());
}

HttpResponse HttpServer::dispatch(const HttpRequest& req) {
  const bool headOnly = req.method == "HEAD";
  const Method want =
      req.method == "POST" ? Method::kPost : Method::kGet;
  const bool methodRoutable =
      req.method == "GET" || headOnly || req.method == "POST";
  bool pathKnown = false;
  std::string allow;
  for (const Route& r : routes_) {
    if (r.path != req.path) continue;
    pathKnown = true;
    if (methodRoutable && r.method == want) {
      try {
        return r.handler(req);
      } catch (const std::exception& e) {
        return HttpResponse::text(500, std::string("handler error: ") +
                                           e.what() + "\n");
      } catch (...) {
        return HttpResponse::text(500, "handler error\n");
      }
    }
    const char* m = r.method == Method::kPost ? "POST" : "GET, HEAD";
    if (allow.find(m) == std::string::npos) {
      if (!allow.empty()) allow += ", ";
      allow += m;
    }
  }
  if (pathKnown) {
    // Known path, wrong (or unimplemented) method: 405 names what would
    // work. The request was fully read, so keep-alive is honored.
    HttpResponse res = HttpResponse::text(
        405, "method " + req.method + " not allowed for " + req.path +
                 " (allow: " + allow + ")\n");
    res.withHeader("Allow", allow);
    return res;
  }
  std::string body = "404 not found: " + req.path + "\nendpoints:\n";
  for (const std::string& path : routes()) body += "  " + path + "\n";
  return HttpResponse::text(404, std::move(body));
}

void HttpServer::serveConnection(int fd) {
  std::string buf;
  bool keep = true;
  while (keep && !stopping_.load(std::memory_order_acquire)) {
    HttpRequest req;
    int errStatus = 0;
    if (!readRequest(fd, buf, req, errStatus)) {
      // Transport/parse errors close the connection: past a framing
      // error the request stream cannot be resynchronized.
      if (errStatus != 0) {
        HttpResponse err = HttpResponse::text(
            errStatus, std::string(statusReason(errStatus)) + "\n");
        writeResponse(fd, err, /*keepAlive=*/false, /*headOnly=*/false);
      }
      return;
    }
    const bool headOnly = req.method == "HEAD";
    req.clientFd = fd;
    const HttpResponse res = dispatch(req);
    // Application responses honor keep-alive whatever their status: the
    // request was fully consumed, so the connection stays in sync even
    // after a 404/405/429/5xx.
    keep = opts_.keepAlive && wantsKeepAlive(req) && !res.closeConnection &&
           !stopping_.load(std::memory_order_acquire);
    writeResponse(fd, res, keep, headOnly);
  }
}

namespace {

/// Shared client path: connect, send `requestText`, read to EOF, parse
/// status line + headers. Both httpGet and httpPost ride on it.
HttpResult httpExchange(const std::string& host, std::uint16_t port,
                        const std::string& requestText, int timeoutMs,
                        const char* who) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error(std::string(who) + ": socket: " +
                             std::strerror(errno));
  struct FdGuard {
    int fd;
    ~FdGuard() { ::close(fd); }
  } guard{fd};
  setSocketTimeouts(fd, timeoutMs);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error(std::string(who) + ": bad host '" + host +
                             "' (numeric IPv4 required)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0)
    throw std::runtime_error(std::string(who) + ": connect " + host + ':' +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
  if (!sendAll(fd, requestText.data(), requestText.size()))
    throw std::runtime_error(std::string(who) + ": send failed");
  std::string resp;
  for (;;) {
    char chunk[8192];
    const ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r > 0) {
      resp.append(chunk, std::size_t(r));
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      throw std::runtime_error(std::string(who) + ": read timed out");
    break;  // EOF: Connection: close means the response is complete
  }
  const std::size_t headEnd = resp.find("\r\n\r\n");
  if (headEnd == std::string::npos)
    throw std::runtime_error(std::string(who) +
                             ": malformed response (no header end)");
  const std::string_view head = std::string_view(resp).substr(0, headEnd);
  // Status line: HTTP/1.1 SP code SP reason.
  const std::size_t sp = head.find(' ');
  if (sp == std::string_view::npos || head.compare(0, 5, "HTTP/") != 0)
    throw std::runtime_error(std::string(who) + ": malformed status line");
  HttpResult out;
  out.status = std::atoi(std::string(head.substr(sp + 1, 3)).c_str());
  if (out.status < 100 || out.status > 599)
    throw std::runtime_error(std::string(who) + ": malformed status code");
  // Response headers (lower-cased names; Content-Type also pulled out).
  std::size_t pos = head.find('\n');
  while (pos != std::string_view::npos && pos < head.size()) {
    std::size_t end = head.find('\n', pos + 1);
    const std::string_view line = trim(head.substr(
        pos + 1, (end == std::string_view::npos ? head.size() : end) - pos -
                     1));
    pos = end;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name = toLower(std::string(trim(line.substr(0, colon))));
    std::string value(trim(line.substr(colon + 1)));
    if (name == "content-type") out.contentType = value;
    out.headers.emplace_back(std::move(name), std::move(value));
  }
  out.body = resp.substr(headEnd + 4);
  return out;
}

}  // namespace

HttpResult httpGet(const std::string& host, std::uint16_t port,
                   const std::string& target, int timeoutMs,
                   const std::vector<std::pair<std::string, std::string>>&
                       extraHeaders) {
  std::string reqText = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n";
  for (const auto& [name, value] : extraHeaders)
    reqText += name + ": " + value + "\r\n";
  reqText += "\r\n";
  return httpExchange(host, port, reqText, timeoutMs, "httpGet");
}

HttpResult httpPost(
    const std::string& host, std::uint16_t port, const std::string& target,
    const std::string& body, const std::string& contentType,
    const std::vector<std::pair<std::string, std::string>>& extraHeaders,
    int timeoutMs) {
  std::string reqText = "POST " + target + " HTTP/1.1\r\nHost: " + host +
                        "\r\nContent-Type: " + contentType +
                        "\r\nContent-Length: " + std::to_string(body.size()) +
                        "\r\nConnection: close\r\n";
  for (const auto& [name, value] : extraHeaders)
    reqText += name + ": " + value + "\r\n";
  reqText += "\r\n";
  reqText += body;
  return httpExchange(host, port, reqText, timeoutMs, "httpPost");
}

}  // namespace hsd::net
