// Compact lithography simulator used as the ground-truth hotspot oracle
// for the synthetic benchmark suite (the ICCAD-2012 contest labels came
// from foundry lithography simulation; this module plays that role).
//
// Model: the drawn mask is rasterized, convolved with a Gaussian
// point-spread function (a one-kernel approximation of a partially
// coherent aerial image), and thresholded by an ideal resist. A region
// fails printability when
//   * a drawn-interior pixel's intensity falls below the resist threshold
//     (the feature necks/pinches), or
//   * a space-interior pixel's intensity rises above it (two features
//     bridge).
// Both failure modes depend on widths/spacings *and* on the surrounding
// pattern inside the optical radius — so labels correlate with clip
// geometry (learnable) and the ambit genuinely influences the core (which
// is what the paper's feedback kernel exploits).
#pragma once

#include <cstddef>
#include <vector>

#include "geom/rect.hpp"

namespace hsd::litho {

/// Optical / resist model parameters. Defaults target a 32/28 nm-node
/// metal layer look: 193 nm immersion, sigma ~ 0.35*lambda/NA.
struct LithoParams {
  double pixelNm = 20.0;      ///< raster pixel pitch
  double sigmaNm = 90.0;      ///< Gaussian PSF sigma
  double threshold = 0.46;    ///< resist threshold on normalized intensity
  double erodePx = 1.0;       ///< cross-direction interior erosion, pixels
  /// Longitudinal interior distance (nm): a pixel is only checked when the
  /// feature (or space) extends at least this far on both sides along some
  /// axis. This excludes line-end tips, where intensity legitimately rolls
  /// off (line-end shortening is not modeled as a hotspot).
  double longitudinalNm = 100.0;
};

/// Simulated aerial image over a window.
struct AerialImage {
  std::size_t nx = 0;
  std::size_t ny = 0;
  Rect window;
  double pixelNm = 0;
  std::vector<double> intensity;  ///< row-major, [0,1]

  double at(std::size_t ix, std::size_t iy) const {
    return intensity[iy * nx + ix];
  }
};

/// Printability verdict for a checked region.
struct Verdict {
  bool pinch = false;        ///< drawn feature fails to print somewhere
  bool bridge = false;       ///< space fills in somewhere
  double minDrawnI = 1.0;    ///< min intensity over eroded drawn interior
  double maxSpaceI = 0.0;    ///< max intensity over eroded space interior
  /// Severity in intensity units; > 0 iff pinch or bridge.
  double severity = 0.0;

  bool hotspot() const { return pinch || bridge; }
};

class LithoSimulator {
 public:
  explicit LithoSimulator(const LithoParams& p = {}) : p_(p) {}
  const LithoParams& params() const { return p_; }

  /// Simulate the aerial image of `rects` (drawn mask) over `window`.
  AerialImage simulate(const std::vector<Rect>& rects,
                       const Rect& window) const;

  /// Check printability of `region` (in absolute coords) given geometry in
  /// `window` (a clip; the window must contain the region and provide
  /// optical context around it).
  Verdict check(const std::vector<Rect>& rects, const Rect& region,
                const Rect& window) const;

  /// Convenience: verdict.hotspot() of check().
  bool isHotspot(const std::vector<Rect>& rects, const Rect& region,
                 const Rect& window) const {
    return check(rects, region, window).hotspot();
  }

 private:
  LithoParams p_;
};

/// One process corner: a dose excursion (resist threshold shift) and a
/// focus excursion (PSF sigma scale).
struct ProcessCorner {
  double thresholdDelta = 0.0;
  double sigmaScale = 1.0;
};

/// A process window: the set of corners a pattern must print at.
/// Default: nominal plus +/-5% dose at +/-8% defocus blur.
struct ProcessWindow {
  std::vector<ProcessCorner> corners{
      {0.0, 1.0}, {-0.023, 0.92}, {+0.023, 1.08}};
};

/// Worst-case verdict across the process window: pinch/bridge if any
/// corner fails; intensities are the worst observed. A pattern that is
/// clean at nominal but fails at a corner is a process-window hotspot.
Verdict checkProcessWindow(const LithoParams& nominal,
                           const ProcessWindow& window,
                           const std::vector<Rect>& rects, const Rect& region,
                           const Rect& clipWindow);

}  // namespace hsd::litho
