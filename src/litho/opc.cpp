#include "litho/opc.hpp"

#include <algorithm>

namespace hsd::litho {

namespace {

// Clearance from rect i's given side to the nearest facing rect; a large
// sentinel when nothing faces it.
constexpr Coord kOpen = 1'000'000'000;

enum class Side { kLeft, kRight, kBottom, kTop };

Coord clearance(const std::vector<Rect>& rects, std::size_t i, Side side) {
  const Rect& r = rects[i];
  Coord best = kOpen;
  for (std::size_t j = 0; j < rects.size(); ++j) {
    if (j == i) continue;
    const Rect& o = rects[j];
    switch (side) {
      case Side::kLeft:
        if (o.hi.x <= r.lo.x && o.lo.y < r.hi.y && r.lo.y < o.hi.y)
          best = std::min(best, r.lo.x - o.hi.x);
        break;
      case Side::kRight:
        if (o.lo.x >= r.hi.x && o.lo.y < r.hi.y && r.lo.y < o.hi.y)
          best = std::min(best, o.lo.x - r.hi.x);
        break;
      case Side::kBottom:
        if (o.hi.y <= r.lo.y && o.lo.x < r.hi.x && r.lo.x < o.hi.x)
          best = std::min(best, r.lo.y - o.hi.y);
        break;
      case Side::kTop:
        if (o.lo.y >= r.hi.y && o.lo.x < r.hi.x && r.lo.x < o.hi.x)
          best = std::min(best, o.lo.y - r.hi.y);
        break;
    }
  }
  return best;
}

}  // namespace

OpcResult applyRuleOpc(const std::vector<Rect>& rects, const OpcRules& rules) {
  OpcResult out;
  out.corrected = rects;

  // Pass 1: widen sub-minimum features, respecting each side's space
  // budget (gap - minSpace, split between the two facing features).
  for (std::size_t i = 0; i < out.corrected.size(); ++i) {
    Rect& r = out.corrected[i];
    bool touched = false;
    if (r.width() < rules.minWidth) {
      const Coord need = rules.minWidth - r.width();
      const Coord budgetL = std::clamp<Coord>(
          (clearance(out.corrected, i, Side::kLeft) - rules.minSpace) / 2, 0,
          rules.maxBiasPerEdge);
      const Coord budgetR = std::clamp<Coord>(
          (clearance(out.corrected, i, Side::kRight) - rules.minSpace) / 2, 0,
          rules.maxBiasPerEdge);
      const Coord growL = std::min(budgetL, (need + 1) / 2);
      const Coord growR = std::min(budgetR, need - growL);
      if (growL + growR > 0) {
        r.lo.x -= growL;
        r.hi.x += growR;
        touched = true;
      }
    }
    if (r.height() < rules.minWidth) {
      const Coord need = rules.minWidth - r.height();
      const Coord budgetB = std::clamp<Coord>(
          (clearance(out.corrected, i, Side::kBottom) - rules.minSpace) / 2,
          0, rules.maxBiasPerEdge);
      const Coord budgetT = std::clamp<Coord>(
          (clearance(out.corrected, i, Side::kTop) - rules.minSpace) / 2, 0,
          rules.maxBiasPerEdge);
      const Coord growB = std::min(budgetB, (need + 1) / 2);
      const Coord growT = std::min(budgetT, need - growB);
      if (growB + growT > 0) {
        r.lo.y -= growB;
        r.hi.y += growT;
        touched = true;
      }
    }
    if (touched) ++out.widened;
  }

  // Pass 2: open sub-minimum spaces by pulling back both facing edges,
  // bounded so no feature drops below minWidth.
  for (std::size_t i = 0; i < out.corrected.size(); ++i) {
    for (std::size_t j = i + 1; j < out.corrected.size(); ++j) {
      Rect& a = out.corrected[i];
      Rect& b = out.corrected[j];
      // Horizontal facing pair.
      if (a.lo.y < b.hi.y && b.lo.y < a.hi.y) {
        Rect* left = a.hi.x <= b.lo.x ? &a : (b.hi.x <= a.lo.x ? &b : nullptr);
        Rect* right = left == &a ? &b : (left == &b ? &a : nullptr);
        if (left != nullptr && right != nullptr) {
          const Coord gap = right->lo.x - left->hi.x;
          if (gap > 0 && gap < rules.minSpace) {
            const Coord need = rules.minSpace - gap;
            const Coord budL = std::clamp<Coord>(
                left->width() - rules.minWidth, 0, rules.maxBiasPerEdge);
            const Coord budR = std::clamp<Coord>(
                right->width() - rules.minWidth, 0, rules.maxBiasPerEdge);
            const Coord pullL = std::min(budL, (need + 1) / 2);
            const Coord pullR = std::min(budR, need - pullL);
            if (pullL + pullR > 0) {
              left->hi.x -= pullL;
              right->lo.x += pullR;
              ++out.opened;
            }
          }
        }
      }
      // Vertical facing pair.
      if (a.lo.x < b.hi.x && b.lo.x < a.hi.x) {
        Rect* bot = a.hi.y <= b.lo.y ? &a : (b.hi.y <= a.lo.y ? &b : nullptr);
        Rect* top = bot == &a ? &b : (bot == &b ? &a : nullptr);
        if (bot != nullptr && top != nullptr) {
          const Coord gap = top->lo.y - bot->hi.y;
          if (gap > 0 && gap < rules.minSpace) {
            const Coord need = rules.minSpace - gap;
            const Coord budB = std::clamp<Coord>(
                bot->height() - rules.minWidth, 0, rules.maxBiasPerEdge);
            const Coord budT = std::clamp<Coord>(
                top->height() - rules.minWidth, 0, rules.maxBiasPerEdge);
            const Coord pullB = std::min(budB, (need + 1) / 2);
            const Coord pullT = std::min(budT, need - pullB);
            if (pullB + pullT > 0) {
              bot->hi.y -= pullB;
              top->lo.y += pullT;
              ++out.opened;
            }
          }
        }
      }
    }
  }
  return out;
}

FixOutcome detectAndFix(const LithoSimulator& sim,
                        const std::vector<Rect>& rects, const Rect& region,
                        const Rect& window, const OpcRules& rules) {
  FixOutcome out;
  out.before = sim.check(rects, region, window);
  if (!out.before.hotspot()) {
    out.opc.corrected = rects;
    out.after = out.before;
    return out;
  }
  // Iterate the rules: opening a space can re-narrow a feature and vice
  // versa; a few passes settle the interactions (real OPC is iterative).
  out.opc = applyRuleOpc(rects, rules);
  for (int pass = 1; pass < 3; ++pass) {
    out.after = sim.check(out.opc.corrected, region, window);
    if (!out.after.hotspot()) return out;
    OpcRules stronger = rules;
    stronger.maxBiasPerEdge += rules.maxBiasPerEdge;
    const OpcResult next = applyRuleOpc(out.opc.corrected, stronger);
    out.opc.widened += next.widened;
    out.opc.opened += next.opened;
    out.opc.corrected = next.corrected;
  }
  out.after = sim.check(out.opc.corrected, region, window);
  return out;
}

}  // namespace hsd::litho
