// Rule-based layout correction ("OPC-lite"). The paper's introduction
// places hotspot detection right before correction in the DFM flow
// ("lithography hotspots have to be detected and corrected before mask
// synthesis"); this module closes that loop for the examples and tests:
// widen sub-minimum features and open sub-minimum spaces, bounded so a
// fix never creates the opposite violation, then re-verify with the
// simulator.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/rect.hpp"
#include "litho/litho.hpp"

namespace hsd::litho {

struct OpcRules {
  Coord minWidth = 150;   ///< widen features narrower than this
  Coord minSpace = 160;   ///< open facing spaces tighter than this
  Coord maxBiasPerEdge = 60;  ///< never move one edge further than this
};

struct OpcResult {
  std::vector<Rect> corrected;
  std::size_t widened = 0;  ///< rects that received a width bias
  std::size_t opened = 0;   ///< facing pairs whose space was opened
  bool changed() const { return widened > 0 || opened > 0; }
};

/// Apply the rule set to `rects` (treated as disjoint feature rectangles).
/// Edges are only moved where the opposing constraint allows: widening is
/// capped by the nearest neighbor's space budget, space opening is capped
/// by each side's width budget.
OpcResult applyRuleOpc(const std::vector<Rect>& rects, const OpcRules& rules);

/// Detect-and-correct convenience: run the oracle on `region`; when it
/// flags a failure, apply the rules and re-check. Returns the final
/// verdict alongside the corrected geometry.
struct FixOutcome {
  OpcResult opc;
  Verdict before;
  Verdict after;
  bool fixed() const { return before.hotspot() && !after.hotspot(); }
};

FixOutcome detectAndFix(const LithoSimulator& sim,
                        const std::vector<Rect>& rects, const Rect& region,
                        const Rect& window, const OpcRules& rules);

}  // namespace hsd::litho
