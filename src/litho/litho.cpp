#include "litho/litho.hpp"

#include <algorithm>
#include <cmath>

#include "geom/density_grid.hpp"

namespace hsd::litho {

namespace {

// 1-D Gaussian kernel with radius 3*sigma, normalized to sum 1.
std::vector<double> gaussianKernel(double sigmaPx) {
  const int radius = std::max(1, int(std::ceil(3.0 * sigmaPx)));
  std::vector<double> k(std::size_t(2 * radius + 1));
  double sum = 0;
  for (int i = -radius; i <= radius; ++i) {
    const double v = std::exp(-0.5 * double(i) * double(i) /
                              (sigmaPx * sigmaPx));
    k[std::size_t(i + radius)] = v;
    sum += v;
  }
  for (double& v : k) v /= sum;
  return k;
}

// Separable convolution with zero-padding outside the image.
std::vector<double> convolveSeparable(const std::vector<double>& img,
                                      std::size_t nx, std::size_t ny,
                                      const std::vector<double>& k) {
  const int radius = int(k.size() / 2);
  std::vector<double> tmp(img.size(), 0.0);
  // Horizontal pass.
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      double s = 0;
      for (int d = -radius; d <= radius; ++d) {
        const std::int64_t xx = std::int64_t(x) + d;
        if (xx < 0 || xx >= std::int64_t(nx)) continue;
        s += img[y * nx + std::size_t(xx)] * k[std::size_t(d + radius)];
      }
      tmp[y * nx + x] = s;
    }
  }
  // Vertical pass.
  std::vector<double> out(img.size(), 0.0);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      double s = 0;
      for (int d = -radius; d <= radius; ++d) {
        const std::int64_t yy = std::int64_t(y) + d;
        if (yy < 0 || yy >= std::int64_t(ny)) continue;
        s += tmp[std::size_t(yy) * nx + x] * k[std::size_t(d + radius)];
      }
      out[y * nx + x] = s;
    }
  }
  return out;
}

}  // namespace

AerialImage LithoSimulator::simulate(const std::vector<Rect>& rects,
                                     const Rect& window) const {
  AerialImage img;
  img.window = window;
  img.pixelNm = p_.pixelNm;
  img.nx = std::max<std::size_t>(
      1, std::size_t(std::llround(double(window.width()) / p_.pixelNm)));
  img.ny = std::max<std::size_t>(
      1, std::size_t(std::llround(double(window.height()) / p_.pixelNm)));
  const DensityGrid mask(rects, window, img.nx, img.ny);
  img.intensity = convolveSeparable(mask.values(), img.nx, img.ny,
                                    gaussianKernel(p_.sigmaNm / p_.pixelNm));
  return img;
}

Verdict LithoSimulator::check(const std::vector<Rect>& rects,
                              const Rect& regionIn, const Rect& windowIn) const {
  Verdict v;
  // Optical influence decays within ~4 sigma; shrinking the simulated
  // window to the checked region plus that halo keeps the cost flat
  // regardless of the clip size without changing the verdict.
  const Coord halo =
      Coord(4.0 * p_.sigmaNm + p_.longitudinalNm + 2.0 * p_.pixelNm);
  const Rect window = regionIn.inflated(halo).intersect(windowIn);
  const Rect region = regionIn.intersect(window);
  const AerialImage img = simulate(rects, window);
  const DensityGrid mask(rects, window, img.nx, img.ny);

  // Pixel index range of the checked region.
  const auto toIx = [&](Coord x) {
    return std::clamp<std::int64_t>(
        std::int64_t(std::floor(double(x - window.lo.x) / p_.pixelNm)), 0,
        std::int64_t(img.nx) - 1);
  };
  const auto toIy = [&](Coord y) {
    return std::clamp<std::int64_t>(
        std::int64_t(std::floor(double(y - window.lo.y) / p_.pixelNm)), 0,
        std::int64_t(img.ny) - 1);
  };
  const std::int64_t x0 = toIx(region.lo.x);
  const std::int64_t x1 = toIx(region.hi.x - 1);
  const std::int64_t y0 = toIy(region.lo.y);
  const std::int64_t y1 = toIy(region.hi.y - 1);

  const int er = std::max(1, int(std::lround(p_.erodePx)));
  const auto drawnAt = [&](std::int64_t x, std::int64_t y) {
    if (x < 0 || y < 0 || x >= std::int64_t(img.nx) ||
        y >= std::int64_t(img.ny))
      return false;
    return mask.at(std::size_t(x), std::size_t(y)) >= 0.99;
  };
  const auto spaceAt = [&](std::int64_t x, std::int64_t y) {
    if (x < 0 || y < 0 || x >= std::int64_t(img.nx) ||
        y >= std::int64_t(img.ny))
      return true;  // outside the window counts as space
    return mask.at(std::size_t(x), std::size_t(y)) <= 0.01;
  };

  // Longitudinal reach: the pixel only counts when the feature (space)
  // continues this far on both sides along some axis, so line-end tips and
  // space pockets at tips are not flagged for their legitimate roll-off.
  const int lng = std::max(1, int(std::lround(p_.longitudinalNm / p_.pixelNm)));

  for (std::int64_t y = y0; y <= y1; ++y) {
    for (std::int64_t x = x0; x <= x1; ++x) {
      // Cross-direction interior: the pixel and its 4-neighborhood at the
      // erosion radius must agree, so boundary pixels (where the threshold
      // crossing legitimately sits) are not flagged.
      bool drawnInterior = drawnAt(x, y);
      bool spaceInterior = spaceAt(x, y);
      for (int d = 1; d <= er && (drawnInterior || spaceInterior); ++d) {
        drawnInterior = drawnInterior && drawnAt(x - d, y) &&
                        drawnAt(x + d, y) && drawnAt(x, y - d) &&
                        drawnAt(x, y + d);
        spaceInterior = spaceInterior && spaceAt(x - d, y) &&
                        spaceAt(x + d, y) && spaceAt(x, y - d) &&
                        spaceAt(x, y + d);
      }
      if (drawnInterior) {
        drawnInterior = (drawnAt(x - lng, y) && drawnAt(x + lng, y)) ||
                        (drawnAt(x, y - lng) && drawnAt(x, y + lng));
      }
      if (spaceInterior) {
        spaceInterior = (spaceAt(x - lng, y) && spaceAt(x + lng, y)) ||
                        (spaceAt(x, y - lng) && spaceAt(x, y + lng));
      }
      const double inten = img.at(std::size_t(x), std::size_t(y));
      if (drawnInterior) v.minDrawnI = std::min(v.minDrawnI, inten);
      if (spaceInterior) v.maxSpaceI = std::max(v.maxSpaceI, inten);
    }
  }

  v.pinch = v.minDrawnI < p_.threshold;
  v.bridge = v.maxSpaceI > p_.threshold;
  v.severity = std::max({0.0, p_.threshold - v.minDrawnI,
                         v.maxSpaceI - p_.threshold});
  return v;
}

Verdict checkProcessWindow(const LithoParams& nominal,
                           const ProcessWindow& window,
                           const std::vector<Rect>& rects, const Rect& region,
                           const Rect& clipWindow) {
  Verdict worst;
  for (const ProcessCorner& c : window.corners) {
    LithoParams p = nominal;
    p.threshold = nominal.threshold + c.thresholdDelta;
    p.sigmaNm = nominal.sigmaNm * c.sigmaScale;
    const Verdict v =
        LithoSimulator(p).check(rects, region, clipWindow);
    worst.pinch = worst.pinch || v.pinch;
    worst.bridge = worst.bridge || v.bridge;
    worst.minDrawnI = std::min(worst.minDrawnI, v.minDrawnI);
    worst.maxSpaceI = std::max(worst.maxSpaceI, v.maxSpaceI);
    worst.severity = std::max(worst.severity, v.severity);
  }
  return worst;
}
}  // namespace hsd::litho
