// Parametrized layout motifs for the synthetic benchmark generator.
// Each motif emits clip-local geometry (window [0, clipSide)^2 with the
// core centered) whose printability depends on its dimensions: "risky"
// variants sit near the synthetic process's lithographic limit, "safe"
// variants are comfortably printable. Ground truth always comes from the
// litho oracle, never from the risk knob — the knob only biases dimensions.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "geom/rect.hpp"
#include "layout/clip.hpp"

namespace hsd::data {

/// Motif families, loosely matching the pattern types the paper's figures
/// show (line arrays, line ends, L/U shapes, the Fig. 8 "mountain", ...).
enum class MotifKind : std::uint8_t {
  kDenseLines = 0,  ///< parallel wire array through the core
  kLineEnd,         ///< facing line tips with a gap
  kLJog,            ///< L-shaped wire with a parallel neighbor
  kUShape,          ///< U / double-L enclosure
  kMountain,        ///< stacked blocks (Fig. 8 pattern)
  kIsoLine,         ///< isolated wire
  kComb,            ///< interdigitated fingers
  kCount,
};

/// How aggressive the sampled dimensions are.
enum class Risk : std::uint8_t {
  kSafe = 0,    ///< relaxed widths/spacings
  kMarginal,    ///< near the limit; ambit decides printability
  kRisky,       ///< at/below the limit
};

/// Ambit context style around the core motif.
enum class AmbitStyle : std::uint8_t {
  kEmpty = 0,   ///< nothing in the ambit
  kSparse,      ///< a few far wires
  kDense,       ///< regular wire fabric through the ambit
};

/// Dimension regime of the synthetic process (calibrated against the litho
/// oracle defaults: sigma 90 nm, threshold 0.46).
struct ProcessDims {
  Coord safeWidth = 180;
  Coord safeSpace = 220;
  Coord marginalWidth = 135;
  Coord marginalSpace = 150;
  Coord riskyWidth = 105;
  Coord riskySpace = 110;
  Coord jitter = 15;  ///< uniform +/- jitter applied to sampled dims

  /// 32 nm-flavored (slightly coarser) and 28 nm-flavored (tighter) regimes.
  static ProcessDims node32();
  static ProcessDims node28();
};

using Rng = std::mt19937_64;

/// Generate one motif instance: clip-local rects on the given window.
/// Geometry spans the core and (depending on `ambit`) the ambit ring.
std::vector<Rect> makeMotif(MotifKind kind, Risk risk, AmbitStyle ambit,
                            const ProcessDims& dims, const ClipParams& clip,
                            Rng& rng);

/// Regular vertical wire fabric covering `region` (used for backgrounds and
/// dense ambits): wires of `width` at `pitch`, starting at `phase`.
std::vector<Rect> wireFabric(const Rect& region, Coord width, Coord pitch,
                             Coord phase = 0);

}  // namespace hsd::data
