// Synthetic ICCAD-2012-style benchmark generation: labeled training clip
// sets and testing layouts with oracle-derived ground truth. Substitutes
// for the (publicly released but not shipped here) contest GDSII data;
// see DESIGN.md for the substitution argument.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/motifs.hpp"
#include "gds/ascii.hpp"
#include "layout/clip.hpp"
#include "layout/layout.hpp"
#include "litho/litho.hpp"

namespace hsd::data {

struct GeneratorParams {
  ClipParams clip;
  ProcessDims dims;            ///< process regime (node32 / node28)
  litho::LithoParams litho;    ///< oracle model
  LayerId layer = 1;
  std::uint64_t seed = 1;
};

/// Desired class counts for a training set. Generation keeps sampling
/// motifs until both targets are met (or maxAttempts trips).
struct TrainingTargets {
  std::size_t hotspots = 100;
  std::size_t nonHotspots = 500;
  std::size_t maxAttempts = 100000;
  /// Random clip-window anchor offset (+/- nm, both axes) applied before
  /// oracle labeling. Mirrors how evaluation-phase clips are anchored at
  /// polygon corners rather than centered on the pattern, so the training
  /// distribution matches what the detector sees on a layout.
  Coord anchorJitter = 300;
};

/// Generate a labeled training clip set. Labels come from the litho
/// oracle applied to each clip's core (with the full clip as context).
gds::ClipSet generateTrainingSet(const GeneratorParams& gp,
                                 const TrainingTargets& targets,
                                 const std::string& name = "training");

/// A testing layout plus its oracle-derived ground truth.
struct TestLayout {
  Layout layout;
  std::vector<ClipWindow> actualHotspots;
  std::size_t motifSites = 0;  ///< number of embedded motif instances
};

/// Generate a testing layout of the given extent: a safe background wire
/// fabric with `sites` embedded motif instances (riskyFrac of them sampled
/// at risky/marginal dimensions). Ground truth = oracle verdicts on the
/// site cores.
TestLayout generateTestLayout(const GeneratorParams& gp, Coord width,
                              Coord height, std::size_t sites,
                              double riskyFrac,
                              const std::string& name = "testing");

/// Two-layer clip generation for the multilayer extension (Sec. IV-A):
/// metal1/metal2 crossings whose printability depends on the landing-pad
/// overlap between the layers as well as each layer's own dimensions.
/// Label rule: hotspot when either layer fails the litho oracle in the
/// core, or the smallest crossing-overlap dimension in the core is below
/// `minOverlapDim` (via-coverage failure).
struct MultiLayerTargets {
  std::size_t hotspots = 40;
  std::size_t nonHotspots = 160;
  std::size_t maxAttempts = 50000;
  Coord minOverlapDim = 120;
  LayerId layer1 = 1;
  LayerId layer2 = 2;
};

gds::ClipSet generateMultiLayerTrainingSet(const GeneratorParams& gp,
                                           const MultiLayerTargets& targets,
                                           const std::string& name = "ml");

/// One benchmark of the suite: training data + testing layout.
struct Benchmark {
  std::string name;
  std::string process;  ///< "32nm" or "28nm"
  gds::ClipSet training;
  TestLayout test;
};

/// Shape parameters of one suite entry (mirrors Table I's structure at a
/// single-core-tractable scale).
struct BenchmarkSpec {
  std::string name;
  bool node32 = false;
  TrainingTargets targets;
  Coord width = 40000;
  Coord height = 40000;
  std::size_t sites = 60;
  double riskyFrac = 0.5;
  std::uint64_t seed = 1;
};

/// The five ICCAD-2012-like benchmark specs (plus the blind layout is
/// generated separately from spec 1's generator params).
std::vector<BenchmarkSpec> iccad2012LikeSuite();

/// Generate one benchmark from its spec.
Benchmark generateBenchmark(const BenchmarkSpec& spec);

}  // namespace hsd::data
