#include "data/motifs.hpp"

#include <algorithm>

#include "geom/orientation.hpp"

namespace hsd::data {

ProcessDims ProcessDims::node32() {
  ProcessDims d;
  d.safeWidth = 200;
  d.safeSpace = 240;
  d.marginalWidth = 150;
  d.marginalSpace = 165;
  d.riskyWidth = 115;
  d.riskySpace = 120;
  d.jitter = 18;
  return d;
}

ProcessDims ProcessDims::node28() {
  return ProcessDims{};  // defaults are the 28 nm-flavored regime
}

std::vector<Rect> wireFabric(const Rect& region, Coord width, Coord pitch,
                             Coord phase) {
  std::vector<Rect> out;
  if (width <= 0 || pitch <= width) return out;
  for (Coord x = region.lo.x + phase; x + width <= region.hi.x; x += pitch)
    out.push_back({x, region.lo.y, x + width, region.hi.y});
  return out;
}

namespace {

Coord jit(Rng& rng, Coord amp) {
  if (amp <= 0) return 0;
  return std::uniform_int_distribution<Coord>(-amp, amp)(rng);
}

struct Dims {
  Coord w;  // wire width
  Coord s;  // spacing / gap
};

Dims pick(Risk risk, const ProcessDims& d, Rng& rng) {
  Dims out{};
  switch (risk) {
    case Risk::kSafe:
      out = {d.safeWidth, d.safeSpace};
      break;
    case Risk::kMarginal:
      out = {d.marginalWidth, d.marginalSpace};
      break;
    case Risk::kRisky:
      out = {d.riskyWidth, d.riskySpace};
      break;
  }
  out.w = std::max<Coord>(40, out.w + jit(rng, d.jitter));
  out.s = std::max<Coord>(40, out.s + jit(rng, d.jitter));
  return out;
}

// Clip-local geometry helpers. The window is [0, clipSide)^2 with the core
// [ambit, ambit+coreSide)^2.
struct Frame {
  Coord clipSide;
  Coord ambit;
  Coord coreLo;
  Coord coreHi;
  Coord cx;  // clip center
};

Frame frameOf(const ClipParams& c) {
  Frame f;
  f.clipSide = c.clipSide;
  f.ambit = c.ambit();
  f.coreLo = c.ambit();
  f.coreHi = c.ambit() + c.coreSide;
  f.cx = c.clipSide / 2;
  return f;
}

void denseLines(const Frame& f, const Dims& d, Rng& rng,
                std::vector<Rect>& out) {
  const int n = std::uniform_int_distribution<int>(3, 4)(rng);
  const Coord pitch = d.w + d.s;
  const Coord x0 = f.cx - (Coord(n) * pitch - d.s) / 2;
  const Coord yLo = f.coreLo - 600;
  const Coord yHi = f.coreHi + 600;
  for (int i = 0; i < n; ++i) {
    const Coord x = x0 + Coord(i) * pitch;
    out.push_back({x, yLo, x + d.w, yHi});
  }
}

void lineEnd(const Frame& f, const Dims& d, Rng& rng, std::vector<Rect>& out) {
  const Coord g = d.s;  // tip-to-tip gap
  const Coord w = d.w;  // tip width: risky tips pinch before the gap
  const Coord x = f.cx - w / 2;
  const Coord mid = (f.coreLo + f.coreHi) / 2 + jit(rng, 60);
  out.push_back({x, f.coreLo - 600, x + w, mid - g / 2});
  out.push_back({x, mid + (g + 1) / 2, x + w, f.coreHi + 600});
  // Side neighbors make the gap's printability context-dependent.
  const Coord ns = d.s + 60;
  out.push_back({x - ns - w, f.coreLo - 600, x - ns, f.coreHi + 600});
  out.push_back({x + w + ns, f.coreLo - 600, x + w + ns + w, f.coreHi + 600});
}

void lJog(const Frame& f, const Dims& d, Rng& rng, std::vector<Rect>& out) {
  const Coord w = d.w;
  const Coord armX = f.cx - 300 + jit(rng, 40);
  const Coord armY = (f.coreLo + f.coreHi) / 2 + jit(rng, 60);
  // Vertical arm rising out of the core, horizontal arm to the right.
  out.push_back({armX, armY, armX + w, f.coreHi + 600});
  out.push_back({armX, armY, armX + 500 + jit(rng, 60), armY + w});
  // Parallel neighbor below the horizontal arm at the sampled spacing.
  const Coord ny = armY - d.s - w;
  out.push_back({armX - 200, ny, armX + 500, ny + w});
  // And one to the left of the vertical arm.
  const Coord nx = armX - d.s - w;
  out.push_back({nx, armY - 300, nx + w, f.coreHi + 600});
}

void uShape(const Frame& f, const Dims& d, Rng& rng, std::vector<Rect>& out) {
  const Coord w = d.w;
  const Coord g = d.s;  // inner gap of the U
  const Coord x0 = f.cx - g / 2 - w + jit(rng, 30);
  const Coord x1 = f.cx + g / 2 + jit(rng, 30);
  const Coord yBot = f.coreLo + 150 + jit(rng, 50);
  const Coord yTop = f.coreHi + 300;
  out.push_back({x0, yBot, x0 + w, yTop});          // left arm
  out.push_back({x1, yBot, x1 + w, yTop});          // right arm
  out.push_back({x0, yBot, x1 + w, yBot + w});      // bottom bar
}

void mountain(const Frame& f, const Dims& d, Rng& rng,
              std::vector<Rect>& out) {
  // Stacked blocks of increasing height side by side (Fig. 8 flavor).
  const Coord w = std::max<Coord>(150, d.w + 60);
  const Coord s = d.s;
  const Coord base = f.coreLo + 150 + jit(rng, 40);
  Coord x = f.cx - (3 * w + 2 * s) / 2;
  const Coord heights[3] = {350, 750, 450};
  for (int i = 0; i < 3; ++i) {
    out.push_back({x, base, x + w, base + heights[i] + jit(rng, 40)});
    x += w + s;
  }
  // A wide plate above, leaving a sampled vertical space to the peak.
  const Coord plateY = base + 750 + d.s + jit(rng, 30);
  out.push_back({f.cx - 700, plateY, f.cx + 700, plateY + w});
}

void isoLine(const Frame& f, const Dims& d, Rng& rng,
             std::vector<Rect>& out) {
  const Coord x = f.cx - d.w / 2 + jit(rng, 50);
  out.push_back({x, f.coreLo - 900, x + d.w, f.coreHi + 900});
}

void comb(const Frame& f, const Dims& d, Rng& rng, std::vector<Rect>& out) {
  const Coord w = d.w;
  const Coord s = d.s;
  const Coord pitch = 2 * (w + s);
  const Coord spineL = f.coreLo - 500;
  const Coord spineR = f.coreHi + 500;
  out.push_back({spineL - w - 100, f.coreLo - 400, spineL, f.coreHi + 400});
  out.push_back({spineR, f.coreLo - 400, spineR + w + 100, f.coreHi + 400});
  const Coord tipGap = s + jit(rng, 20);
  Coord y = f.coreLo + jit(rng, 80);
  bool fromLeft = true;
  for (; y + w <= f.coreHi; y += pitch / 2) {
    if (fromLeft)
      out.push_back({spineL, y, spineR - tipGap, y + w});
    else
      out.push_back({spineL + tipGap, y, spineR, y + w});
    fromLeft = !fromLeft;
  }
}

void addAmbit(const Frame& f, AmbitStyle style, const ProcessDims& d,
              Rng& rng, std::vector<Rect>& out) {
  if (style == AmbitStyle::kEmpty) return;
  const Coord w = d.safeWidth;
  const Coord pitch = d.safeWidth + d.safeSpace;
  if (style == AmbitStyle::kDense) {
    // Fabric bands in the left and right ambit rings, running full height.
    std::vector<Rect> left = wireFabric(
        {200, 200, f.coreLo - 120, f.clipSide - 200}, w, pitch, jit(rng, 60) + 60);
    std::vector<Rect> right = wireFabric(
        {f.coreHi + 120, 200, f.clipSide - 200, f.clipSide - 200}, w, pitch,
        jit(rng, 60) + 60);
    out.insert(out.end(), left.begin(), left.end());
    out.insert(out.end(), right.begin(), right.end());
  } else {
    // Sparse: one wire on each side, far from the core.
    const Coord xl = 500 + jit(rng, 100);
    const Coord xr = f.clipSide - 500 - w + jit(rng, 100);
    out.push_back({xl, 300, xl + w, f.clipSide - 300});
    out.push_back({xr, 300, xr + w, f.clipSide - 300});
  }
}

}  // namespace

std::vector<Rect> makeMotif(MotifKind kind, Risk risk, AmbitStyle ambit,
                            const ProcessDims& dims, const ClipParams& clip,
                            Rng& rng) {
  const Frame f = frameOf(clip);
  const Dims d = pick(risk, dims, rng);
  std::vector<Rect> out;
  switch (kind) {
    case MotifKind::kDenseLines: denseLines(f, d, rng, out); break;
    case MotifKind::kLineEnd:    lineEnd(f, d, rng, out); break;
    case MotifKind::kLJog:       lJog(f, d, rng, out); break;
    case MotifKind::kUShape:     uShape(f, d, rng, out); break;
    case MotifKind::kMountain:   mountain(f, d, rng, out); break;
    case MotifKind::kIsoLine:    isoLine(f, d, rng, out); break;
    case MotifKind::kComb:       comb(f, d, rng, out); break;
    case MotifKind::kCount:      break;
  }
  addAmbit(f, ambit, dims, rng, out);

  // Random orientation so the suite exercises the D8 handling end to end.
  const Orient o =
      kAllOrients[std::uniform_int_distribution<std::size_t>(0, 7)(rng)];
  std::vector<Rect> rot;
  rot.reserve(out.size());
  for (const Rect& r : out) {
    const Rect c = r.intersect({0, 0, f.clipSide, f.clipSide});
    if (c.valid() && !c.empty())
      rot.push_back(apply(o, c, f.clipSide, f.clipSide));
  }
  return rot;
}

}  // namespace hsd::data
