#include "data/generator.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace hsd::data {

namespace {

constexpr hsd::Coord kOpenDim = 1'000'000'000;

MotifKind sampleKind(Rng& rng) {
  return MotifKind(std::uniform_int_distribution<int>(
      0, int(MotifKind::kCount) - 1)(rng));
}

Risk sampleRisk(Rng& rng, double riskyFrac) {
  const double u = std::uniform_real_distribution<double>(0, 1)(rng);
  if (u < riskyFrac * 0.6) return Risk::kRisky;
  if (u < riskyFrac) return Risk::kMarginal;
  return Risk::kSafe;
}

AmbitStyle sampleAmbit(Rng& rng) {
  const double u = std::uniform_real_distribution<double>(0, 1)(rng);
  if (u < 0.30) return AmbitStyle::kEmpty;
  if (u < 0.65) return AmbitStyle::kSparse;
  return AmbitStyle::kDense;
}

// A clip of plain background fabric (safe vertical wires with random
// segment breaks), so training sees the material that dominates a real
// testing layout.
std::vector<Rect> makeBackgroundClip(const GeneratorParams& gp, Rng& rng) {
  const Coord w = gp.dims.safeWidth;
  const Coord pitch = gp.dims.safeWidth + gp.dims.safeSpace;
  const Coord side = gp.clip.clipSide;
  const Coord phase = std::uniform_int_distribution<Coord>(0, pitch - 1)(rng);
  std::uniform_int_distribution<Coord> segLen(2500, 6500);
  std::uniform_int_distribution<Coord> segGap(450, 800);
  std::vector<Rect> out;
  for (Coord x = phase; x + w <= side; x += pitch) {
    Coord y = std::uniform_int_distribution<Coord>(-1200, 400)(rng);
    while (y < side) {
      const Coord yEnd = std::min(y + segLen(rng), side);
      if (yEnd - std::max<Coord>(y, 0) >= 400)
        out.push_back({x, std::max<Coord>(y, 0), x + w, yEnd});
      y = yEnd + segGap(rng);
    }
  }
  return out;
}

}  // namespace

gds::ClipSet generateTrainingSet(const GeneratorParams& gp,
                                 const TrainingTargets& targets,
                                 const std::string& name) {
  Rng rng(gp.seed);
  const litho::LithoSimulator sim(gp.litho);
  gds::ClipSet set;
  set.name = name;
  set.params = gp.clip;

  const ClipWindow centered = ClipWindow::atCore(
      {gp.clip.ambit(), gp.clip.ambit()}, gp.clip);
  std::uniform_int_distribution<Coord> jitter(-targets.anchorJitter,
                                              targets.anchorJitter);
  std::size_t hs = 0, nhs = 0;
  for (std::size_t attempt = 0;
       (hs < targets.hotspots || nhs < targets.nonHotspots) &&
       attempt < targets.maxAttempts;
       ++attempt) {
    std::vector<Rect> rects;
    if (std::uniform_real_distribution<double>(0, 1)(rng) < 0.35) {
      rects = makeBackgroundClip(gp, rng);
    } else {
      const MotifKind kind = sampleKind(rng);
      const Risk risk = sampleRisk(rng, 0.5);
      const AmbitStyle ambit = sampleAmbit(rng);
      rects = makeMotif(kind, risk, ambit, gp.dims, gp.clip, rng);
    }
    if (rects.empty()) continue;

    const ClipWindow win =
        targets.anchorJitter > 0
            ? centered.translated({jitter(rng), jitter(rng)})
            : centered;
    const bool hotspot = sim.isHotspot(rects, win.core, win.clip);
    if (hotspot && hs >= targets.hotspots) continue;
    if (!hotspot && nhs >= targets.nonHotspots) continue;

    Clip clip(win, hotspot ? Label::kHotspot : Label::kNonHotspot);
    clip.setRects(gp.layer, std::move(rects));
    set.clips.push_back(std::move(clip));
    (hotspot ? hs : nhs) += 1;
  }
  return set;
}

TestLayout generateTestLayout(const GeneratorParams& gp, Coord width,
                              Coord height, std::size_t sites,
                              double riskyFrac, const std::string& name) {
  Rng rng(gp.seed * 0x9e3779b97f4a7c15ULL + 17);
  const litho::LithoSimulator sim(gp.litho);
  TestLayout out;
  out.layout.setName(name);

  // Motif sites on a coarse grid with one clip-sized cell plus margin.
  const Coord sitePitch = gp.clip.clipSide + 1600;
  const Coord gridW = width / sitePitch;
  const Coord gridH = height / sitePitch;
  if (gridW <= 0 || gridH <= 0)
    throw std::invalid_argument("generateTestLayout: extent too small");
  std::vector<std::size_t> cells(std::size_t(gridW * gridH));
  for (std::size_t i = 0; i < cells.size(); ++i) cells[i] = i;
  std::shuffle(cells.begin(), cells.end(), rng);
  const std::size_t nSites = std::min(sites, cells.size());

  struct Site {
    ClipWindow win;
    std::vector<Rect> rects;  // absolute coords
  };
  std::vector<Site> placed;
  placed.reserve(nSites);
  std::vector<Rect> exclusion;  // background keep-out zones
  for (std::size_t si = 0; si < nSites; ++si) {
    const Coord gx = Coord(cells[si]) % gridW;
    const Coord gy = Coord(cells[si]) / gridW;
    const Point origin{gx * sitePitch + 800, gy * sitePitch + 800};

    const MotifKind kind = sampleKind(rng);
    const Risk risk = sampleRisk(rng, riskyFrac);
    const AmbitStyle ambit = sampleAmbit(rng);
    std::vector<Rect> local =
        makeMotif(kind, risk, ambit, gp.dims, gp.clip, rng);
    if (local.empty()) continue;

    Site s;
    s.win = ClipWindow::atCore(
        {origin.x + gp.clip.ambit(), origin.y + gp.clip.ambit()}, gp.clip);
    s.rects.reserve(local.size());
    for (const Rect& r : local) s.rects.push_back(r.translated(origin));
    exclusion.push_back(s.win.clip.inflated(300));
    placed.push_back(std::move(s));
  }

  // Background fabric: safe vertical wires with random segment breaks,
  // skipping the site exclusion zones.
  const Coord w = gp.dims.safeWidth;
  const Coord pitch = gp.dims.safeWidth + gp.dims.safeSpace;
  std::uniform_int_distribution<Coord> segLen(2500, 6500);
  std::uniform_int_distribution<Coord> segGap(450, 800);
  for (Coord x = 0; x + w <= width; x += pitch) {
    Coord y = std::uniform_int_distribution<Coord>(0, 800)(rng);
    while (y < height) {
      const Coord yEnd = std::min(y + segLen(rng), height);
      Rect seg{x, y, x + w, yEnd};
      bool blocked = false;
      for (const Rect& ex : exclusion)
        if (seg.overlaps(ex)) {
          blocked = true;
          break;
        }
      if (!blocked && seg.height() >= 800)
        out.layout.addRect(gp.layer, seg);
      y = yEnd + segGap(rng);
    }
  }

  // Place motif geometry and derive ground truth from the oracle.
  for (const Site& s : placed) {
    for (const Rect& r : s.rects) out.layout.addRect(gp.layer, r);
    if (sim.isHotspot(s.rects, s.win.core, s.win.clip))
      out.actualHotspots.push_back(s.win);
  }
  out.motifSites = placed.size();
  return out;
}

gds::ClipSet generateMultiLayerTrainingSet(const GeneratorParams& gp,
                                           const MultiLayerTargets& targets,
                                           const std::string& name) {
  Rng rng(gp.seed ^ 0xabcdef12345ULL);
  const litho::LithoSimulator sim(gp.litho);
  gds::ClipSet set;
  set.name = name;
  set.params = gp.clip;

  const ClipWindow win =
      ClipWindow::atCore({gp.clip.ambit(), gp.clip.ambit()}, gp.clip);
  const Coord cx = gp.clip.clipSide / 2;

  std::size_t hs = 0, nhs = 0;
  std::uniform_int_distribution<Coord> jit(-150, 150);
  for (std::size_t attempt = 0;
       (hs < targets.hotspots || nhs < targets.nonHotspots) &&
       attempt < targets.maxAttempts;
       ++attempt) {
    // Metal1: horizontal bar ending near the core center; metal2: vertical
    // bar of fixed width placed near that end. The landing-pad overlap is
    // a function of the *relative* position of the two layers, so neither
    // layer's geometry alone determines the label — the genuinely
    // multilayer signal of Sec. IV-A / Fig. 13.
    const Coord jx = jit(rng);
    const Coord jy = jit(rng);
    const Coord w1 =
        gp.dims.safeWidth + std::uniform_int_distribution<Coord>(-30, 30)(rng);
    const Coord w2 =
        gp.dims.safeWidth + std::uniform_int_distribution<Coord>(-30, 30)(rng);
    const Coord endX =
        cx + std::uniform_int_distribution<Coord>(-220, 220)(rng);
    const Coord viaX =
        cx + std::uniform_int_distribution<Coord>(-220, 220)(rng);
    std::vector<Rect> m1{
        {cx - 1000 + jx, cx - w1 / 2 + jy, endX + jx, cx + w1 / 2 + jy}};
    std::vector<Rect> m2{{viaX - w2 / 2 + jx, cx - 1000 + jy,
                          viaX + w2 / 2 + jx, cx + 1000 + jy}};
    // Occasional company on each layer.
    if (attempt % 3 == 0) {
      m1.push_back({cx - 1000 + jx, cx + jy + 400, cx + 1000 + jx,
                    cx + jy + 400 + gp.dims.safeWidth});
      m2.push_back({cx + jx - 700 - gp.dims.safeWidth, cx - 1000 + jy,
                    cx + jx - 700, cx + 1000 + jy});
    }

    // Label: either layer fails litho, or the crossing overlap is thin.
    bool hotspot = sim.isHotspot(m1, win.core, win.clip) ||
                   sim.isHotspot(m2, win.core, win.clip);
    Coord minDim = kOpenDim;
    for (const Rect& a : m1) {
      for (const Rect& b : m2) {
        const Rect ov = a.intersect(b);
        if (ov.valid() && !ov.empty() && win.core.overlaps(ov))
          minDim = std::min(minDim, std::min(ov.width(), ov.height()));
      }
    }
    if (minDim != kOpenDim && minDim < targets.minOverlapDim) hotspot = true;

    if (hotspot && hs >= targets.hotspots) continue;
    if (!hotspot && nhs >= targets.nonHotspots) continue;
    Clip clip(win, hotspot ? Label::kHotspot : Label::kNonHotspot);
    clip.setRects(targets.layer1, std::move(m1));
    clip.setRects(targets.layer2, std::move(m2));
    set.clips.push_back(std::move(clip));
    (hotspot ? hs : nhs) += 1;
  }
  return set;
}

std::vector<BenchmarkSpec> iccad2012LikeSuite() {
  // Mirrors Table I's structure (training imbalance, one 32 nm + four
  // 28 nm benchmarks, varying scale) at single-core-tractable sizes.
  std::vector<BenchmarkSpec> specs(5);
  specs[0] = {"benchmark1", true, {40, 160, 100000}, 42000, 40000, 50, 0.60, 101};
  specs[1] = {"benchmark2", false, {60, 600, 200000}, 66000, 64000, 120, 0.55, 202};
  specs[2] = {"benchmark3", false, {150, 800, 300000}, 78000, 76000, 170, 0.65, 303};
  specs[3] = {"benchmark4", false, {40, 500, 200000}, 58000, 56000, 80, 0.45, 404};
  specs[4] = {"benchmark5", false, {15, 350, 150000}, 50000, 48000, 50, 0.35, 505};
  return specs;
}

Benchmark generateBenchmark(const BenchmarkSpec& spec) {
  GeneratorParams gp;
  gp.dims = spec.node32 ? ProcessDims::node32() : ProcessDims::node28();
  gp.seed = spec.seed;

  Benchmark b;
  b.name = spec.name;
  b.process = spec.node32 ? "32nm" : "28nm";
  b.training = generateTrainingSet(gp, spec.targets, "MX_" + spec.name + "_clip");
  b.test = generateTestLayout(gp, spec.width, spec.height, spec.sites,
                              spec.riskyFrac, "Array_" + spec.name);
  return b;
}

}  // namespace hsd::data
