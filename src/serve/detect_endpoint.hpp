// Detection-as-a-service over the wire: the HTTP face of
// DetectionServer. A DetectionEndpoint mounts POST /detect on a
// net::HttpServer and bridges each request to DetectionServer::submit(),
// so remote clients get the same ContextPool + shared StageCache path —
// and byte-identical reports — as in-process callers.
//
// Request contract (full wire-protocol reference: DESIGN.md §12):
//  - body: the layout. Content-Type selects the parser —
//    "text/plain" (or absent) = the ASCII layout format,
//    "application/octet-stream" / "application/gdsii" = raw GDSII
//    binary. Chunked upload works (the transport de-frames it); bodies
//    are capped by the HttpServer's maxBodyBytes (413 beyond it).
//  - query params: detector config (bias, removal=0|1, feedback=0|1),
//    tiling (tile-size, halo, tile-threads), and deadline-ms (also
//    accepted as an X-Deadline-Ms header; query wins). Bad numerics are
//    a 400 before any work happens.
//  - response 200: the report in windows format (gds::writeWindowList
//    bytes — exactly what hsd_detect writes), with the run identified in
//    headers: X-Request-Id (wire-level id, present on every response
//    including rejections), X-Trace-Id (the request's 32-hex correlation
//    id — parsed from a W3C `traceparent` request header when one is
//    sent, minted otherwise; also on every response, and the key into
//    /tracez?trace= and /logz?trace=), X-Serve-Request (the
//    DetectionServer submission index, correlating with serve/queued +
//    serve/run trace spans), X-Candidate-Clips /
//    X-Flagged-Before-Removal (the funnel counters), X-Cache-Hits /
//    X-Cache-Misses (this request's shared-cache traffic).
//  - profiles: a request carrying `X-Profile: 1` gets an `X-Profile`
//    response header on 200 — one-line JSON with the queue/run split,
//    arena growth, cache deltas and the per-stage EngineStats table —
//    and the same object lands in the statsJson() recent-profile ring.
//
// Admission control: before parsing the body, the endpoint consults the
// server's live queue depth; at or beyond maxQueueDepth it answers 429
// with a Retry-After estimated from the p50 run latency — overload is
// typed, never a hung or reset connection. A draining server answers
// 503.
//
// Typed failures: 400 (malformed layout/GDSII/params, undersized halo),
// 413/431 (transport caps), 415 (unknown Content-Type), 429 (queue
// full), 499 (client disconnected; the run is cancelled server-side —
// the handler probes the connection while waiting and fires the
// request's CancelSource), 503 (draining), 504 (deadline exceeded).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "core/trainer.hpp"
#include "net/http.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_id.hpp"
#include "serve/server.hpp"

namespace hsd::serve {

struct DetectEndpointConfig {
  /// Admission bound: a POST arriving while queueDepth() >= this gets a
  /// 429 + Retry-After instead of queueing. 0 rejects everything (useful
  /// in tests); pick >= expected burst for production.
  std::size_t maxQueueDepth = 64;
  /// Deadline applied when the request carries none (0 = unbounded).
  double defaultDeadlineMs = 0.0;
  /// Hard ceiling on the per-request deadline; client asks beyond it are
  /// clamped (0 = no ceiling).
  double maxDeadlineMs = 0.0;
  /// Floor for the Retry-After estimate, seconds.
  double retryAfterMinSeconds = 1.0;
};

/// Bridges POST /detect to a DetectionServer. Thread-safe: the handler
/// runs concurrently on the transport's handler pool. The detector and
/// server must outlive the endpoint; the endpoint must outlive the
/// HttpServer it is mounted on (or be unmounted by stopping that server
/// first).
class DetectionEndpoint {
 public:
  DetectionEndpoint(DetectionServer& server, const core::Detector& detector,
                    DetectEndpointConfig cfg = {});

  DetectionEndpoint(const DetectionEndpoint&) = delete;
  DetectionEndpoint& operator=(const DetectionEndpoint&) = delete;

  /// Register POST /detect on `http`. Call before http.start(). The
  /// endpoint keeps a pointer to `http` to distinguish a client
  /// disconnect from the server's own drain (stop() shuts read sides
  /// down, which looks like EOF).
  void mount(net::HttpServer& http);

  /// The wire-plane metric registry (mount on the admin server next to
  /// the DetectionServer's):
  ///   hsd_detect_requests_total{status="200"|...} — responses by code,
  ///   hsd_detect_inflight — requests inside the handler right now,
  ///   hsd_detect_request_bytes_total / hsd_detect_response_bytes_total,
  ///   hsd_detect_disconnect_cancels_total — runs cancelled because the
  ///     client went away,
  ///   hsd_detect_seconds — wall time per request, admission to reply.
  std::shared_ptr<obs::MetricsRegistry> metrics() const { return metrics_; }

  /// One-line JSON stats blob (admin /statsz "detect" section).
  std::string statsJson() const;

  /// The request handler itself — public for direct-call tests; normal
  /// traffic reaches it through mount().
  net::HttpResponse handle(const net::HttpRequest& req);

 private:
  net::HttpResponse process(const net::HttpRequest& req, std::uint64_t wireId,
                            obs::TraceId trace);
  void countStatus(int status);
  void rememberProfile(std::string profileJson);

  DetectionServer& server_;
  const core::Detector& detector_;
  DetectEndpointConfig cfg_;
  net::HttpServer* http_ = nullptr;  ///< set by mount(); drain detection

  std::atomic<std::uint64_t> nextWireId_{0};

  /// Last few X-Profile request profiles, newest last (statsJson
  /// "recentProfiles"). Request-grained, so a plain mutex is fine.
  static constexpr std::size_t kProfileRing = 8;
  mutable std::mutex profileMu_;
  std::deque<std::string> recentProfiles_;

  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* status200_ = nullptr;
  obs::Counter* status400_ = nullptr;
  obs::Counter* status415_ = nullptr;
  obs::Counter* status429_ = nullptr;
  obs::Counter* status499_ = nullptr;
  obs::Counter* status500_ = nullptr;
  obs::Counter* status503_ = nullptr;
  obs::Counter* status504_ = nullptr;
  obs::Counter* statusOther_ = nullptr;
  obs::Gauge* inflight_ = nullptr;
  obs::Counter* requestBytes_ = nullptr;
  obs::Counter* responseBytes_ = nullptr;
  obs::Counter* disconnectCancels_ = nullptr;
  obs::Histogram* latency_ = nullptr;
};

}  // namespace hsd::serve
