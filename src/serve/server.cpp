#include "serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <locale>
#include <sstream>

namespace hsd::serve {

namespace {

double secondsSince(std::chrono::steady_clock::time_point t0,
                    std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Dense index of a status for the per-status counter array.
std::size_t statusIndex(RequestStatus s) {
  return std::size_t(s) < 5 ? std::size_t(s) : 0;
}

}  // namespace

const char* toString(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kTimeout: return "timeout";
    case RequestStatus::kCancelled: return "cancelled";
    case RequestStatus::kError: return "error";
    case RequestStatus::kRejected: return "rejected";
  }
  return "unknown";
}

engine::CacheStats ServeResult::cache(const std::string& stage) const {
  for (const auto& [name, c] : cacheStats)
    if (name == stage) return c;
  return {};
}

void CancelSource::cancel() {
  cancelled_.store(true, std::memory_order_release);
  // If a run is bound right now, raise its cooperative flag so the
  // pipeline's next throwIfCancelled() aborts it. The mutex closes the
  // race with bind/unbind: either we see the context here, or bind()
  // sees cancelled_ and raises the flag itself.
  const std::lock_guard<std::mutex> lock(mu_);
  if (ctx_ != nullptr) ctx_->requestCancel();
}

void CancelSource::bind(engine::RunContext* ctx) {
  const std::lock_guard<std::mutex> lock(mu_);
  ctx_ = ctx;
  if (cancelled_.load(std::memory_order_acquire)) ctx->requestCancel();
}

void CancelSource::unbind() {
  const std::lock_guard<std::mutex> lock(mu_);
  ctx_ = nullptr;
}

ContextPool::ContextPool(std::size_t contexts, std::size_t threadsPerContext,
                         std::size_t batchSize,
                         std::shared_ptr<engine::StageCache> cache,
                         std::shared_ptr<obs::TraceRecorder> tracer,
                         std::shared_ptr<obs::LogRecorder> log,
                         std::shared_ptr<obs::ModelStatsRecorder> modelStats) {
  contexts = std::max<std::size_t>(1, contexts);
  all_.reserve(contexts);
  slots_.reset(new Slot[contexts]);
  for (std::size_t i = 0; i < contexts; ++i) {
    auto ctx = std::make_unique<engine::RunContext>(threadsPerContext,
                                                    batchSize);
    if (cache) ctx->attachCache(cache);
    if (tracer) ctx->attachTracer(tracer);
    if (log) ctx->attachLog(log);
    if (modelStats) ctx->attachModelStats(modelStats);
    // Pre-warm: spawn the worker threads now so the first request doesn't
    // pay pool construction latency (threads=1 contexts stay thread-free).
    if (ctx->threadCount() > 1) ctx->pool();
    slots_[i].value.store(ctx.get(), std::memory_order_relaxed);
    all_.push_back(std::move(ctx));
  }
}

engine::RunContext* ContextPool::checkout() {
  if (engine::RunContext* ctx = tryCheckout()) return ctx;
  std::unique_lock<std::mutex> lock(mu_);
  engine::RunContext* ctx = nullptr;
  // The predicate re-probes the slots while holding mu_; checkin
  // publishes under mu_ before notifying, so a release can't slip
  // between the probe and the wait.
  cv_.wait(lock, [this, &ctx] { return (ctx = tryCheckout()) != nullptr; });
  return ctx;
}

engine::RunContext* ContextPool::tryCheckout() {
  for (std::size_t i = 0; i < all_.size(); ++i) {
    if (slots_[i].value.load(std::memory_order_relaxed) == nullptr) continue;
    if (engine::RunContext* ctx =
            slots_[i].value.exchange(nullptr, std::memory_order_acquire))
      return ctx;
  }
  return nullptr;
}

void ContextPool::checkin(engine::RunContext* ctx) {
  // The cancellation-reuse contract: a context that served a cancelled or
  // timed-out request must run the next request cleanly. resetCancel()
  // clears both the flag and any armed deadline; the stats wipe makes the
  // next request's EngineStats snapshot purely its own.
  ctx->resetCancel();
  ctx->stats().clear();
  ctx->setTraceId({});  // a reused context must not inherit correlation
  std::size_t i = 0;
  while (i < all_.size() && all_[i].get() != ctx) ++i;
  if (i == all_.size()) return;  // not ours — refuse rather than corrupt
  {
    const std::lock_guard<std::mutex> lock(mu_);
    slots_[i].value.store(ctx, std::memory_order_release);
  }
  cv_.notify_one();
}

DetectionServer::DetectionServer(ServerConfig cfg) : cfg_(cfg) {
  cfg_.workers = std::max<std::size_t>(1, cfg_.workers);
  if (cfg_.contexts == 0) cfg_.contexts = cfg_.workers;
  registerMetrics();
  // Built-in SLO tracker over the registry the request path already
  // updates: good = ok, total = every finished evaluation (rejected
  // requests never ran and are an admission signal, not availability).
  slo_ = std::make_shared<obs::SloTracker>(cfg_.slo);
  slo_->setAvailabilitySource(
      [ok = statusTotal_[statusIndex(RequestStatus::kOk)]] {
        return ok->value();
      },
      [this] {
        std::uint64_t total = 0;
        for (const RequestStatus s :
             {RequestStatus::kOk, RequestStatus::kTimeout,
              RequestStatus::kCancelled, RequestStatus::kError})
          total += statusTotal_[statusIndex(s)]->value();
        return total;
      });
  slo_->setLatencySource(runHist_);
  if (cfg_.enableCache)
    cache_ = std::make_shared<engine::StageCache>(cfg_.cacheCapacity,
                                                  cfg_.tracer);
  pool_ = std::make_unique<ContextPool>(cfg_.contexts, cfg_.threadsPerContext,
                                        cfg_.batchSize, cache_, cfg_.tracer,
                                        cfg_.log, cfg_.modelStats);
  workers_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i)
    workers_.emplace_back([this, i] { workerLoop(i); });
}

void DetectionServer::registerMetrics() {
  metrics_ = std::make_shared<obs::MetricsRegistry>();
  // Registration order is exposition order — keep it stable.
  queueDepth_ = &metrics_->gauge(
      "hsd_serve_queue_depth", "Requests accepted but not yet dequeued");
  inflight_ = &metrics_->gauge("hsd_serve_inflight_requests",
                               "Requests currently being processed");
  submittedTotal_ = &metrics_->counter("hsd_serve_requests_submitted_total",
                                       "Requests accepted into the queue");
  for (const RequestStatus s :
       {RequestStatus::kOk, RequestStatus::kTimeout, RequestStatus::kCancelled,
        RequestStatus::kError, RequestStatus::kRejected})
    statusTotal_[statusIndex(s)] =
        &metrics_->counter("hsd_serve_requests_total",
                           "Finished requests by outcome",
                           {{"status", toString(s)}});
  queueHist_ = &metrics_->histogram(
      "hsd_serve_queue_seconds", "Queue wait per request (submit to dequeue)");
  runHist_ = &metrics_->histogram("hsd_serve_run_seconds",
                                  "Evaluation wall time per request");
  cacheHits_ = &metrics_->counter("hsd_serve_cache_hits_total",
                                  "Shared stage-cache hits across requests");
  cacheMisses_ = &metrics_->counter(
      "hsd_serve_cache_misses_total",
      "Shared stage-cache misses across requests");
  // After the fixed serve block so the existing exposition order is
  // untouched; the recorder's per-cluster verdict counters append.
  if (cfg_.modelStats) cfg_.modelStats->bindMetrics(*metrics_);
}

DetectionServer::~DetectionServer() { shutdown(); }

std::future<ServeResult> DetectionServer::submit(
    const core::Detector& det, const Layout& layout, core::EvalParams params,
    std::optional<std::chrono::steady_clock::duration> timeout,
    Callback callback, std::shared_ptr<CancelSource> cancel,
    obs::TraceId trace) {
  Request req;
  req.det = &det;
  req.layout = &layout;
  req.params = std::move(params);
  req.submitted = std::chrono::steady_clock::now();
  if (timeout) req.deadline = req.submitted + *timeout;
  req.trace = trace;
  req.callback = std::move(callback);
  req.cancel = std::move(cancel);
  std::future<ServeResult> fut = req.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!accepting_) {
      ++stats_.rejected;
      lock.unlock();
      statusTotal_[statusIndex(RequestStatus::kRejected)]->inc();
      ServeResult res;
      res.status = RequestStatus::kRejected;
      res.trace = trace;
      res.error = "server is shut down";
      if (req.callback) {
        try {
          req.callback(res);
        } catch (...) {  // callbacks must not take down the caller
        }
      }
      req.promise.set_value(std::move(res));
      return fut;
    }
    ++stats_.submitted;
    req.id = stats_.submitted;
    queue_.push_back(std::move(req));
  }
  submittedTotal_->inc();
  queueDepth_->inc();
  cv_.notify_one();
  return fut;
}

bool DetectionServer::accepting() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return accepting_ && !stopping_;
}

std::size_t DetectionServer::queueDepth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void DetectionServer::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
}

void DetectionServer::workerLoop(std::size_t workerIndex) {
  if (cfg_.tracer)
    cfg_.tracer->nameThread("serve-worker-" + std::to_string(workerIndex));
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      req = std::move(queue_.front());
      queue_.pop_front();
    }
    finish(req, process(req));
  }
}

ServeResult DetectionServer::process(Request& req) {
  ServeResult res;
  // The request's wire trace id becomes this worker thread's ambient id
  // for the whole turnaround: the serve spans, latency exemplars, and
  // every span/log the evaluation emits below all correlate to it.
  const obs::ScopedTraceId traceScope(req.trace);
  const auto dequeued = std::chrono::steady_clock::now();
  res.queueSeconds = secondsSince(req.submitted, dequeued);
  queueDepth_->dec();
  queueHist_->observe(res.queueSeconds, req.trace);
  obs::TraceRecorder* const tracer = cfg_.tracer.get();
  if (tracer != nullptr)
    tracer->recordSpan("serve/queued", "serve", req.submitted, dequeued,
                       {"request", req.id});
  // Fast-fail requests that aged out — or were abandoned — while queued:
  // no context checkout, no evaluation, just a typed result.
  if ((req.deadline && dequeued >= *req.deadline) ||
      (req.cancel && req.cancel->cancelled())) {
    res.status = req.cancel && req.cancel->cancelled()
                     ? RequestStatus::kCancelled
                     : RequestStatus::kTimeout;
    runHist_->observe(0.0);
    if (tracer != nullptr)
      tracer->recordSpan("serve/run", "serve", dequeued, dequeued,
                         {"request", req.id}, {},
                         {"status", toString(res.status)});
    obs::logTo(cfg_.log.get(), obs::LogLevel::kWarn, "serve",
               "request dropped while queued", {"request", req.id}, {},
               {"status", toString(res.status)});
    return res;
  }
  inflight_->inc();
  engine::RunContext* ctx = pool_->checkout();
  ctx->setTraceId(req.trace);
  if (req.deadline) ctx->setDeadline(*req.deadline);
  // Bind the external cancel handle to this run: from here a
  // CancelSource::cancel() raises the context's cooperative flag (the
  // tiled path propagates primary-context cancellation to every helper).
  if (req.cancel) req.cancel->bind(ctx);
  const std::uint64_t arena0 = engine::arenaReservedBytes();
  const auto t0 = std::chrono::steady_clock::now();
  try {
    res.result =
        req.params.tiling.enabled()
            ? runTiled(req, *ctx)
            : core::evaluateLayout(*req.det, *req.layout, req.params, *ctx);
    res.status = RequestStatus::kOk;
  } catch (const engine::CancelledError&) {
    res.status = ctx->deadlineExpired() ? RequestStatus::kTimeout
                                        : RequestStatus::kCancelled;
  } catch (const std::exception& e) {
    res.status = RequestStatus::kError;
    res.error = e.what();
  } catch (...) {
    res.status = RequestStatus::kError;
    res.error = "unknown exception";
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (req.cancel) req.cancel->unbind();  // before checkin resets the ctx
  res.runSeconds = secondsSince(t0, t1);
  res.arenaReservedBytes = engine::arenaReservedBytes() - arena0;
  res.statsJson = ctx->stats().toJson();
  res.cacheStats = ctx->stats().cacheSnapshot();
  pool_->checkin(ctx);
  inflight_->dec();
  runHist_->observe(res.runSeconds, req.trace);
  if (tracer != nullptr)
    tracer->recordSpan("serve/run", "serve", t0, t1, {"request", req.id}, {},
                       {"status", toString(res.status)});
  obs::logTo(cfg_.log.get(),
             res.status == RequestStatus::kOk ? obs::LogLevel::kInfo
                                              : obs::LogLevel::kWarn,
             "serve", "request complete", {"request", req.id},
             {"runUs", std::uint64_t(res.runSeconds * 1e6)},
             {"status", toString(res.status)});
  return res;
}

core::EvalResult DetectionServer::runTiled(Request& req,
                                           engine::RunContext& primary) {
  const auto t0 = std::chrono::steady_clock::now();
  const Layer* l = req.layout->findLayer(req.det->params.layer);
  if (l == nullptr || l->empty()) return {};
  primary.throwIfCancelled();
  const core::TiledLayout tiled = core::prepareTiledLayout(
      *req.layout, req.det->params.layer, req.params);
  // Declared up front on the primary registry: helper-context counters
  // merge into pre-pinned slots, so the per-request ENGINE_STATS key
  // order never depends on which context finished which tile first.
  core::declareTileStages(primary.stats(), tiled,
                          primary.cache() != nullptr);

  const std::size_t n = tiled.work.size();
  std::size_t wantExtras = n > 0 ? n - 1 : 0;
  if (req.params.tiling.tileThreads > 0)
    wantExtras = std::min(wantExtras, req.params.tiling.tileThreads - 1);
  std::vector<engine::RunContext*> extras;
  while (extras.size() < wantExtras) {
    engine::RunContext* const c = pool_->tryCheckout();
    if (c == nullptr) break;  // pool busy: the primary context suffices
    c->setTraceId(req.trace);  // borrowed helpers join the correlation
    if (req.deadline) c->setDeadline(*req.deadline);
    extras.push_back(c);
  }

  // Shared tile queue: every participating context claims the next
  // un-started tile. Index-stable result slots keep the outcome
  // independent of claim order; the merge re-sorts by anchor sequence.
  std::vector<core::TileEvalResult> tiles(n);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::mutex errMu;
  std::exception_ptr firstError;
  const auto drain = [&](engine::RunContext& c) {
    // Helper threads have no ambient trace id of their own — adopt the
    // request's so tile spans/logs off the borrowed contexts correlate.
    const obs::ScopedTraceId traceScope(c.traceId());
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        tiles[i] = core::evaluateTile(*req.det, tiled, i, req.params, c);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(errMu);
          if (!firstError) firstError = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
        // Interrupt the other contexts' in-flight tiles promptly; every
        // context is reset at checkin, so cancellation doesn't leak.
        primary.requestCancel();
        for (engine::RunContext* const e : extras) e->requestCancel();
        return;
      }
    }
  };
  std::vector<std::thread> helpers;
  helpers.reserve(extras.size());
  for (engine::RunContext* const e : extras)
    helpers.emplace_back([&drain, e] { drain(*e); });
  drain(primary);
  for (std::thread& h : helpers) h.join();
  for (engine::RunContext* const e : extras) {
    primary.stats().mergeFrom(e->stats());
    pool_->checkin(e);
  }
  if (firstError) std::rethrow_exception(firstError);
  return core::finishTiledEval(tiled, std::move(tiles), req.params, primary,
                               t0);
}

void DetectionServer::finish(Request& req, ServeResult res) {
  res.requestId = req.id;
  res.trace = req.trace;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.completed;
    switch (res.status) {
      case RequestStatus::kOk: ++stats_.ok; break;
      case RequestStatus::kTimeout: ++stats_.timeout; break;
      case RequestStatus::kCancelled: ++stats_.cancelled; break;
      case RequestStatus::kError: ++stats_.error; break;
      case RequestStatus::kRejected: break;  // counted at submit
    }
    stats_.busySeconds += res.runSeconds;
  }
  statusTotal_[statusIndex(res.status)]->inc();
  // Per-request cache counters are deltas (the pooled context's stats are
  // wiped between requests), so summing them here yields server totals.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& [stage, c] : res.cacheStats) {
    hits += c.hits;
    misses += c.misses;
  }
  if (hits > 0) cacheHits_->inc(hits);
  if (misses > 0) cacheMisses_->inc(misses);
  if (req.callback) {
    try {
      req.callback(res);
    } catch (...) {  // a throwing callback must not kill the worker
    }
  }
  req.promise.set_value(std::move(res));
}

DetectionServer::Stats DetectionServer::stats() const {
  Stats s;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
  }
  if (cache_) s.cache = cache_->counters();
  return s;
}

std::string DetectionServer::statsJson() const {
  const Stats s = stats();
  const std::size_t lookups = s.cache.hits + s.cache.misses;
  std::ostringstream os;
  os.imbue(std::locale::classic());  // valid JSON under any global locale
  os.precision(6);
  os << std::fixed;
  os << "{\"requests\": {\"submitted\": " << s.submitted
     << ", \"completed\": " << s.completed << ", \"ok\": " << s.ok
     << ", \"timeout\": " << s.timeout << ", \"cancelled\": " << s.cancelled
     << ", \"error\": " << s.error << ", \"rejected\": " << s.rejected
     << "}, \"busySeconds\": " << s.busySeconds
     << ", \"workers\": " << cfg_.workers
     << ", \"contexts\": " << cfg_.contexts
     << ", \"threadsPerContext\": " << cfg_.threadsPerContext
     << ", \"cache\": {\"enabled\": " << (cache_ ? "true" : "false")
     << ", \"hits\": " << s.cache.hits << ", \"misses\": " << s.cache.misses
     << ", \"evictions\": " << s.cache.evictions
     << ", \"entries\": " << s.cache.entries << ", \"hitRate\": "
     << (lookups == 0 ? 0.0 : double(s.cache.hits) / double(lookups))
     << "}, \"latency\": {\"queueSeconds\": {\"p50\": "
     << queueHist_->quantile(0.50) << ", \"p95\": "
     << queueHist_->quantile(0.95) << ", \"p99\": "
     << queueHist_->quantile(0.99)
     << "}, \"runSeconds\": {\"p50\": " << runHist_->quantile(0.50)
     << ", \"p95\": " << runHist_->quantile(0.95)
     << ", \"p99\": " << runHist_->quantile(0.99) << "}, \"exemplars\": [";
  // Recent trace-id exemplars off the run histogram: one per bucket, so
  // a slow bucket hands you a concrete request to pull from /tracez.
  bool first = true;
  for (const obs::Histogram::Exemplar& e : runHist_->exemplars()) {
    if (!e.valid()) continue;
    if (!first) os << ", ";
    first = false;
    os << "{\"runSeconds\": " << e.value << ", \"trace\": \""
       << obs::formatTraceId(e.trace) << "\", \"unixMs\": " << e.unixMs
       << "}";
  }
  os << "]}}";
  return os.str();
}

}  // namespace hsd::serve
