#include "serve/detect_endpoint.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <locale>
#include <optional>
#include <sstream>
#include <utility>

#include "core/evaluator.hpp"
#include "engine/tiler.hpp"
#include "gds/ascii.hpp"
#include "gds/gdsii.hpp"

namespace hsd::serve {

namespace {

/// Strict full-string double parse ("" and trailing junk both fail).
bool parseDouble(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtod(s.c_str(), &end);
  return errno != ERANGE && end != nullptr && *end == '\0' &&
         std::isfinite(out);
}

/// Query/header numeric parameter. Returns false (with `err` set) on a
/// malformed value; a missing parameter leaves `out` untouched.
bool numericParam(const net::HttpRequest& req, const char* name, double& out,
                  std::string& err) {
  const std::string v = req.queryParam(name);
  if (v.empty()) return true;
  if (!parseDouble(v, out)) {
    err = std::string("bad numeric value for '") + name + "': " + v;
    return false;
  }
  return true;
}

/// Media type of the request body with any ";charset=..." suffix and
/// surrounding whitespace stripped, lower-cased. Empty when absent.
std::string mediaType(const net::HttpRequest& req) {
  const std::string* ct = req.header("content-type");
  if (ct == nullptr) return {};
  std::string t = ct->substr(0, ct->find(';'));
  while (!t.empty() && t.back() == ' ') t.pop_back();
  std::size_t b = 0;
  while (b < t.size() && t[b] == ' ') ++b;
  t.erase(0, b);
  for (char& c : t) c = char(std::tolower(static_cast<unsigned char>(c)));
  return t;
}

net::HttpResponse errorResponse(int status, const std::string& detail) {
  return net::HttpResponse::text(
      status, std::string(net::statusReason(status)) + ": " + detail + "\n");
}

/// True when the request opted into per-request profiling
/// (`X-Profile: 1`; any other value is "off", never an error).
bool wantsProfile(const net::HttpRequest& req) {
  const std::string* h = req.header("x-profile");
  return h != nullptr && *h == "1";
}

/// One-line profile JSON for the X-Profile response header and the
/// recent-profile ring: wire/queue/run wall split, arena growth, cache
/// deltas, and the per-stage EngineStats table the pooled context
/// already collected — no extra locking on the request path.
std::string buildProfileJson(const ServeResult& sr, std::uint64_t wireId) {
  std::uint64_t hits = 0, misses = 0;
  for (const auto& [stage, c] : sr.cacheStats) {
    hits += c.hits;
    misses += c.misses;
  }
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(6);
  os << std::fixed;
  os << "{\"wireId\": " << wireId << ", \"status\": \"" << toString(sr.status)
     << '"';
  if (sr.trace.valid())
    os << ", \"trace\": \"" << obs::formatTraceId(sr.trace) << '"';
  os << ", \"queueSeconds\": " << sr.queueSeconds
     << ", \"runSeconds\": " << sr.runSeconds
     << ", \"arenaReservedBytes\": " << sr.arenaReservedBytes
     << ", \"cache\": {\"hits\": " << hits << ", \"misses\": " << misses
     << "}, \"stages\": "
     << (sr.statsJson.empty() ? std::string("{}") : sr.statsJson) << '}';
  return os.str();
}

}  // namespace

DetectionEndpoint::DetectionEndpoint(DetectionServer& server,
                                     const core::Detector& detector,
                                     DetectEndpointConfig cfg)
    : server_(server), detector_(detector), cfg_(cfg) {
  metrics_ = std::make_shared<obs::MetricsRegistry>();
  // Registration order is exposition order — keep it stable.
  const auto statusCounter = [this](const char* code) {
    return &metrics_->counter("hsd_detect_requests_total",
                              "Wire detection responses by HTTP status",
                              {{"status", code}});
  };
  status200_ = statusCounter("200");
  status400_ = statusCounter("400");
  status415_ = statusCounter("415");
  status429_ = statusCounter("429");
  status499_ = statusCounter("499");
  status500_ = statusCounter("500");
  status503_ = statusCounter("503");
  status504_ = statusCounter("504");
  statusOther_ = statusCounter("other");
  inflight_ = &metrics_->gauge("hsd_detect_inflight",
                               "Wire detection requests inside the handler");
  requestBytes_ = &metrics_->counter("hsd_detect_request_bytes_total",
                                     "Layout bytes received over the wire");
  responseBytes_ = &metrics_->counter("hsd_detect_response_bytes_total",
                                      "Report bytes sent over the wire");
  disconnectCancels_ = &metrics_->counter(
      "hsd_detect_disconnect_cancels_total",
      "Runs cancelled because the client disconnected mid-request");
  latency_ = &metrics_->histogram(
      "hsd_detect_seconds",
      "Wire detection wall time per request, admission to reply");
}

void DetectionEndpoint::mount(net::HttpServer& http) {
  http_ = &http;
  http.handlePost("/detect",
                  [this](const net::HttpRequest& req) { return handle(req); });
}

void DetectionEndpoint::countStatus(int status) {
  switch (status) {
    case 200: status200_->inc(); break;
    case 400: status400_->inc(); break;
    case 415: status415_->inc(); break;
    case 429: status429_->inc(); break;
    case 499: status499_->inc(); break;
    case 500: status500_->inc(); break;
    case 503: status503_->inc(); break;
    case 504: status504_->inc(); break;
    default: statusOther_->inc(); break;
  }
}

net::HttpResponse DetectionEndpoint::handle(const net::HttpRequest& req) {
  const std::uint64_t wireId =
      nextWireId_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Wire trace propagation: honor the client's W3C `traceparent` when it
  // parses, mint a fresh id otherwise (the spec's restart rule — an
  // invalid header is ignored, never a 400). The id rides the handler
  // thread for the whole request so even rejection-path logs correlate.
  obs::TraceId trace;
  if (const std::string* tp = req.header("traceparent"))
    obs::parseTraceparent(*tp, trace);
  if (!trace.valid()) trace = obs::makeTraceId();
  const obs::ScopedTraceId traceScope(trace);
  obs::logTo(server_.config().log.get(), obs::LogLevel::kInfo, "wire",
             "detect request", {"wireId", wireId}, {"bytes", req.body.size()});
  inflight_->inc();
  requestBytes_->inc(req.body.size());
  const auto t0 = std::chrono::steady_clock::now();
  net::HttpResponse res = process(req, wireId, trace);
  // Every response — success or rejection — is stamped with the wire id
  // and trace id so a client report line can be matched to server logs,
  // /tracez?trace= and /logz?trace=.
  res.withHeader("X-Request-Id", std::to_string(wireId));
  res.withHeader("X-Trace-Id", obs::formatTraceId(trace));
  countStatus(res.status);
  responseBytes_->inc(res.body.size());
  latency_->observe(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count(),
                    trace);
  inflight_->dec();
  return res;
}

net::HttpResponse DetectionEndpoint::process(const net::HttpRequest& req,
                                             std::uint64_t wireId,
                                             obs::TraceId trace) {
  // --- Parameters (cheap; before admission so garbage fails fast) ----
  double bias = 0.0, removal = 1.0, feedback = 1.0, deadlineMs = -1.0;
  double tileSize = 0.0, halo = 0.0, tileThreads = 0.0;
  std::string err;
  if (!numericParam(req, "bias", bias, err) ||
      !numericParam(req, "removal", removal, err) ||
      !numericParam(req, "feedback", feedback, err) ||
      !numericParam(req, "deadline-ms", deadlineMs, err) ||
      !numericParam(req, "tile-size", tileSize, err) ||
      !numericParam(req, "halo", halo, err) ||
      !numericParam(req, "tile-threads", tileThreads, err))
    return errorResponse(400, err);
  if (deadlineMs < 0.0) {
    // The header form loses to the query param; both are optional.
    if (const std::string* h = req.header("x-deadline-ms")) {
      if (!parseDouble(*h, deadlineMs))
        return errorResponse(400, "bad X-Deadline-Ms header: " + *h);
    }
  }
  if (deadlineMs < 0.0) deadlineMs = cfg_.defaultDeadlineMs;
  if (cfg_.maxDeadlineMs > 0.0 &&
      (deadlineMs <= 0.0 || deadlineMs > cfg_.maxDeadlineMs))
    deadlineMs = cfg_.maxDeadlineMs;

  // --- Admission -----------------------------------------------------
  if (!server_.accepting())
    return errorResponse(503, "detection server is draining");
  const std::size_t depth = server_.queueDepth();
  if (depth >= cfg_.maxQueueDepth) {
    // Estimate when a slot frees up: queued work ahead of this request,
    // at the observed p50 run latency, spread over the worker count.
    const double p50 = server_.runLatency().quantile(0.50);
    const double workers = double(std::max<std::size_t>(
        1, server_.config().workers));
    const double eta = double(depth + 1) * p50 / workers;
    const long long retry = std::llround(std::ceil(
        std::max(cfg_.retryAfterMinSeconds, eta)));
    net::HttpResponse res = errorResponse(
        429, "queue full (" + std::to_string(depth) + " waiting)");
    res.withHeader("Retry-After", std::to_string(std::max(1LL, retry)));
    return res;
  }

  // --- Body -> Layout ------------------------------------------------
  if (req.body.empty()) return errorResponse(400, "empty layout body");
  const std::string type = mediaType(req);
  Layout layout;
  try {
    if (type.empty() || type == "text/plain" ||
        type == "application/x-hsd-layout") {
      std::istringstream is(req.body);
      layout = gds::readAsciiLayout(is);
    } else if (type == "application/octet-stream" ||
               type == "application/gdsii" || type == "application/x-gdsii") {
      std::istringstream is(req.body);
      layout = gds::readGdsii(is);
    } else {
      return errorResponse(
          415, "unsupported layout content-type '" + type +
                   "' (use text/plain for the ASCII format or "
                   "application/octet-stream for GDSII)");
    }
  } catch (const std::exception& e) {
    return errorResponse(400, std::string("malformed layout: ") + e.what());
  }

  // --- Evaluation config ---------------------------------------------
  core::EvalParams ep;
  ep.extract.clip = detector_.params.clip;
  ep.removal.clip = detector_.params.clip;
  ep.decisionBias = bias;
  ep.useRemoval = removal != 0.0;
  ep.useFeedback = feedback != 0.0;
  ep.tiling.tileSize = Coord(tileSize);
  ep.tiling.halo = Coord(halo);
  ep.tiling.tileThreads = std::size_t(std::max(0.0, tileThreads));
  if (ep.tiling.enabled() && ep.tiling.halo != 0 &&
      ep.tiling.halo < engine::minTileHalo(detector_.params.clip))
    // Surface the tiling-exactness violation as a client error here;
    // letting it reach the engine would turn it into a 500.
    return errorResponse(
        400, "halo " + std::to_string(ep.tiling.halo) +
                 " below exactness minimum " +
                 std::to_string(engine::minTileHalo(detector_.params.clip)));

  std::optional<std::chrono::steady_clock::duration> timeout;
  if (deadlineMs > 0.0)
    timeout = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(deadlineMs));

  // --- Submit and await, watching for client disconnect --------------
  auto cancel = std::make_shared<CancelSource>();
  std::future<ServeResult> fut =
      server_.submit(detector_, layout, std::move(ep), timeout, nullptr,
                     cancel, trace);
  bool disconnected = false;
  for (;;) {
    if (fut.wait_for(std::chrono::milliseconds(25)) ==
        std::future_status::ready)
      break;
    // EOF on a MSG_PEEK probe means the client went away: cancel the run
    // so the context frees up. Gated on !draining() — the transport's
    // stop() shuts read sides down, which is indistinguishable from a
    // disconnect, and drained requests must complete. Whatever happens,
    // keep waiting on the future: the submitted layout is this frame's
    // local, referenced until the promise resolves.
    if (!disconnected && req.clientFd >= 0 &&
        (http_ == nullptr || !http_->draining())) {
      char b;
      const ssize_t r =
          ::recv(req.clientFd, &b, 1, MSG_PEEK | MSG_DONTWAIT);
      if (r == 0) {
        disconnected = true;
        disconnectCancels_->inc();
        cancel->cancel();
      }
    }
  }
  const ServeResult sr = fut.get();

  // --- Typed response -------------------------------------------------
  switch (sr.status) {
    case RequestStatus::kOk: break;
    case RequestStatus::kTimeout: {
      net::HttpResponse res = errorResponse(
          504, "deadline of " + std::to_string(deadlineMs) + " ms exceeded");
      res.withHeader("X-Serve-Request", std::to_string(sr.requestId));
      return res;
    }
    case RequestStatus::kCancelled: {
      // Nobody is listening, but the status line documents the outcome
      // for tests and proxies; close, since the peer is gone.
      net::HttpResponse res =
          errorResponse(499, "client disconnected; run cancelled");
      res.closeConnection = true;
      return res;
    }
    case RequestStatus::kError:
      return errorResponse(500, "evaluation failed: " + sr.error);
    case RequestStatus::kRejected:
      return errorResponse(503, "detection server is draining");
  }

  std::ostringstream body;
  body.imbue(std::locale::classic());
  gds::writeWindowList(body, sr.result.reported, detector_.params.clip);
  std::uint64_t hits = 0, misses = 0;
  for (const auto& [stage, c] : sr.cacheStats) {
    hits += c.hits;
    misses += c.misses;
  }
  net::HttpResponse res;
  res.status = 200;
  res.body = body.str();
  res.withHeader("X-Serve-Request", std::to_string(sr.requestId))
      .withHeader("X-Candidate-Clips",
                  std::to_string(sr.result.candidateClips))
      .withHeader("X-Flagged-Before-Removal",
                  std::to_string(sr.result.flaggedBeforeRemoval))
      .withHeader("X-Cache-Hits", std::to_string(hits))
      .withHeader("X-Cache-Misses", std::to_string(misses));
  if (wantsProfile(req)) {
    std::string profile = buildProfileJson(sr, wireId);
    res.withHeader("X-Profile", profile);
    rememberProfile(std::move(profile));
  }
  return res;
}

void DetectionEndpoint::rememberProfile(std::string profileJson) {
  const std::lock_guard<std::mutex> lock(profileMu_);
  recentProfiles_.push_back(std::move(profileJson));
  while (recentProfiles_.size() > kProfileRing) recentProfiles_.pop_front();
}

std::string DetectionEndpoint::statsJson() const {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(6);
  os << std::fixed;
  os << "{\"responses\": {\"200\": " << status200_->value()
     << ", \"400\": " << status400_->value()
     << ", \"415\": " << status415_->value()
     << ", \"429\": " << status429_->value()
     << ", \"499\": " << status499_->value()
     << ", \"500\": " << status500_->value()
     << ", \"503\": " << status503_->value()
     << ", \"504\": " << status504_->value()
     << ", \"other\": " << statusOther_->value()
     << "}, \"inflight\": " << inflight_->value()
     << ", \"requestBytes\": " << requestBytes_->value()
     << ", \"responseBytes\": " << responseBytes_->value()
     << ", \"disconnectCancels\": " << disconnectCancels_->value()
     << ", \"maxQueueDepth\": " << cfg_.maxQueueDepth
     << ", \"latencySeconds\": {\"p50\": " << latency_->quantile(0.50)
     << ", \"p95\": " << latency_->quantile(0.95)
     << ", \"p99\": " << latency_->quantile(0.99)
     << "}, \"recentProfiles\": [";
  {
    const std::lock_guard<std::mutex> lock(profileMu_);
    bool first = true;
    for (const std::string& p : recentProfiles_) {
      if (!first) os << ", ";
      first = false;
      os << p;
    }
  }
  os << "]}";
  return os.str();
}

}  // namespace hsd::serve
