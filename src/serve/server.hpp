// Async serving front end over the detection engine (EPIC-style: hotspot
// prediction as a service that amortizes model cost across many queries).
//
// A DetectionServer multiplexes many evaluation requests — each a
// (detector, layout, EvalParams, optional deadline) tuple — over a bounded
// pool of pre-warmed engine::RunContexts. All contexts share one
// StageCache, so repeated IP blocks across *different* requests hit warm
// verdict/screen entries; the cache's purity contract (values are pure
// functions of their key) makes concurrent reports byte-identical to
// serial ones. Requests past their deadline are cancelled cooperatively
// via the context's deadline (RunContext::setDeadline) and surface a
// typed RequestStatus::kTimeout result — no exception ever escapes a
// worker thread.
//
// Threading model: N worker threads drain a FIFO request queue; each
// checks a RunContext out of the ContextPool for the duration of one
// evaluation and checks it back in reset (cancellation flag cleared,
// deadline disarmed, per-request stats wiped — the cancellation-reuse
// contract in src/engine/README.md). Contexts may be fewer than workers;
// checkout then blocks, bounding the number of in-flight evaluations.
//
// Tiled requests (params.tiling enabled) additionally fan their tiles
// across the pool: the worker borrows idle contexts *non-blockingly*
// (tryCheckout — the request always progresses on its own context, so
// tile fan-out can never deadlock the fleet), each borrowed context
// drains tiles from a shared queue, and the deterministic merge makes
// the reports byte-identical to an untiled run. The shared StageCache is
// keyed on translation-invariant content hashes, so warm tiles skip
// recompute whichever context — or request — computed them first.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/evaluator.hpp"
#include "engine/cache.hpp"
#include "engine/run_context.hpp"
#include "engine/stats.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/model_stats.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "obs/trace_id.hpp"
#include "par/cacheline.hpp"

namespace hsd::serve {

struct ServerConfig {
  std::size_t workers = 2;       ///< request-draining threads
  std::size_t contexts = 0;      ///< RunContext pool size (0 = workers)
  std::size_t threadsPerContext = 1;  ///< intra-request parallelism
  std::size_t batchSize = engine::RunContext::kDefaultBatchSize;
  bool enableCache = true;       ///< share one StageCache across requests
  std::size_t cacheCapacity = engine::StageCache::kDefaultCapacity;
  /// Opt-in span tracing of the whole serving path: worker threads are
  /// named in the trace, every request contributes queued/run spans
  /// (request-id and status annotated), pooled contexts emit per-batch
  /// stage spans and parallelFor chunk spans, and the shared StageCache
  /// records hit/miss-annotated lookups. Near-zero overhead when null.
  std::shared_ptr<obs::TraceRecorder> tracer;
  /// Opt-in structured logging along the same path: request completion
  /// records on the workers plus eval/tile milestones from the pooled
  /// contexts, all trace-correlated. Near-zero overhead when null.
  std::shared_ptr<obs::LogRecorder> log;
  /// SLO objectives for the built-in tracker (availability over finished
  /// requests, latency over the run histogram); see slo().
  obs::SloConfig slo;
  /// Opt-in model-quality recording: attached to every pooled context, so
  /// each evaluation's SVM margins land in the per-cluster sketches (and
  /// borderline windows in the capture ring). Slot order must match the
  /// served detector's kernel order (Detector::clusterNames()). Its
  /// verdict counters are bound into the server's MetricsRegistry.
  /// Near-zero overhead when null.
  std::shared_ptr<obs::ModelStatsRecorder> modelStats;
};

enum class RequestStatus {
  kOk,         ///< evaluation completed; ServeResult::result is valid
  kTimeout,    ///< deadline expired before or during evaluation
  kCancelled,  ///< cancelled without a deadline having expired
  kError,      ///< evaluation threw; ServeResult::error holds what()
  kRejected,   ///< submitted after shutdown()
};

const char* toString(RequestStatus s);

/// Outcome of one request. `result` is meaningful only when ok();
/// stats/cache snapshots cover exactly this request (the pooled context's
/// registry is wiped between requests).
struct ServeResult {
  RequestStatus status = RequestStatus::kRejected;
  /// The server's 1-based submission index of this request — the same id
  /// annotated on the serve/queued and serve/run trace spans, so a wire
  /// response header can be correlated with the trace (0 when rejected
  /// before admission).
  std::uint64_t requestId = 0;
  core::EvalResult result;
  std::string error;
  /// The request's correlation id, echoed from submit(): the same id is
  /// on every span and log record the evaluation produced ({0,0} when the
  /// caller passed none).
  obs::TraceId trace;
  std::string statsJson;  ///< per-request EngineStats JSON dump
  std::vector<std::pair<std::string, engine::CacheStats>> cacheStats;
  double queueSeconds = 0.0;  ///< submit -> dequeue
  double runSeconds = 0.0;    ///< dequeue -> completion (0 if never ran)
  /// Arena payload bytes the process reserved during this run (a delta of
  /// engine::arenaReservedBytes() across the evaluation — 0 in steady
  /// state, where arenas rewind in place). Feeds the X-Profile report.
  std::uint64_t arenaReservedBytes = 0;

  bool ok() const { return status == RequestStatus::kOk; }
  /// Per-request cache counters of one stage (zeros when never recorded).
  engine::CacheStats cache(const std::string& stage) const;
};

/// Bounded blocking pool of pre-warmed RunContexts. checkout() blocks
/// until a context is free; checkin() resets it (cancellation flag,
/// deadline, per-request stats) so the next request starts clean even
/// after a cancelled/timed-out run.
///
/// Layout: one atomic free-slot per context, each padded to its own cache
/// line (slot i free <=> slots_[i] holds the context pointer). Tiled
/// fan-out hammers tryCheckout from every worker at once; with the slots
/// line-separated and claimed by lock-free exchange, those probes touch
/// disjoint lines instead of serializing on one mutex-protected vector.
/// The mutex+condvar remain only for blocking checkout(): checkin stores
/// the slot under the mutex before notifying, so a sleeping waiter can't
/// miss the release (no lost wakeup).
class ContextPool {
 public:
  ContextPool(std::size_t contexts, std::size_t threadsPerContext,
              std::size_t batchSize,
              std::shared_ptr<engine::StageCache> cache,
              std::shared_ptr<obs::TraceRecorder> tracer = nullptr,
              std::shared_ptr<obs::LogRecorder> log = nullptr,
              std::shared_ptr<obs::ModelStatsRecorder> modelStats = nullptr);

  ContextPool(const ContextPool&) = delete;
  ContextPool& operator=(const ContextPool&) = delete;

  engine::RunContext* checkout();
  /// Non-blocking checkout: nullptr when no context is free right now.
  /// Tiled fan-out uses this to borrow idle contexts without ever waiting
  /// on one (a worker holding its own context while blocking for more is
  /// a pool deadlock). Lock-free.
  engine::RunContext* tryCheckout();
  void checkin(engine::RunContext* ctx);
  std::size_t size() const { return all_.size(); }

 private:
  using Slot = par::CachePadded<std::atomic<engine::RunContext*>>;
  static_assert(sizeof(Slot) == par::kCacheLineSize,
                "one slot per line, no neighbors");

  std::vector<std::unique_ptr<engine::RunContext>> all_;
  std::unique_ptr<Slot[]> slots_;  ///< slots_[i] non-null => all_[i] is free
  std::mutex mu_;                  ///< checkout sleep / checkin publish
  std::condition_variable cv_;
};

/// External cancellation handle for one submitted request. A caller that
/// may want to abandon a request (e.g. the HTTP endpoint when the client
/// disconnects) passes one to submit() and calls cancel() from any
/// thread: a still-queued request fast-fails with kCancelled, a running
/// one gets its RunContext's cooperative cancel flag raised. cancel() is
/// idempotent; the handle is single-use (one submit() per source).
class CancelSource {
 public:
  /// Request cancellation. Safe from any thread, any time between
  /// submit() and the future resolving; a no-op after completion.
  void cancel();
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  friend class DetectionServer;
  void bind(engine::RunContext* ctx);    ///< worker: run is starting
  void unbind();                         ///< worker: run is over

  std::atomic<bool> cancelled_{false};
  std::mutex mu_;
  engine::RunContext* ctx_ = nullptr;  ///< non-null while bound to a run
};

/// The serving front end. Callers must keep the detector and layout alive
/// until the returned future resolves (the server stores references, not
/// copies — layouts are large).
class DetectionServer {
 public:
  using Callback = std::function<void(const ServeResult&)>;

  explicit DetectionServer(ServerConfig cfg = {});
  ~DetectionServer();  // shutdown(): drains the queue, joins workers

  DetectionServer(const DetectionServer&) = delete;
  DetectionServer& operator=(const DetectionServer&) = delete;

  /// Enqueue one evaluation. `timeout` is measured from submission; an
  /// expired request is cancelled mid-run (or skipped if still queued) and
  /// resolves to kTimeout instead of throwing. `callback`, if given, runs
  /// on the worker thread right before the future resolves (exceptions it
  /// throws are swallowed). `cancel`, if given, lets the caller abandon
  /// the request from another thread (resolves kCancelled; see
  /// CancelSource).
  /// `trace`, if valid, correlates the request end to end: it is stamped
  /// on the checked-out context (and every borrowed tile context), every
  /// span/log the evaluation records, the latency-histogram exemplars,
  /// and the ServeResult.
  std::future<ServeResult> submit(
      const core::Detector& det, const Layout& layout, core::EvalParams params,
      std::optional<std::chrono::steady_clock::duration> timeout = {},
      Callback callback = nullptr,
      std::shared_ptr<CancelSource> cancel = nullptr,
      obs::TraceId trace = {});

  /// Stop accepting, drain every queued request, join the workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  /// True from construction (the ContextPool is pre-warmed in the
  /// constructor, so a constructed server is a ready server) until
  /// shutdown() begins. This is the /readyz readiness hook: it flips
  /// false the moment a drain starts, while in-flight requests finish.
  bool accepting() const;

  /// Requests accepted but not yet dequeued by a worker — the admission
  /// signal behind the wire endpoint's 429 policy (same value as the
  /// hsd_serve_queue_depth gauge, read exactly).
  std::size_t queueDepth() const;

  /// Aggregate lifetime counters (requests by outcome, worker busy time,
  /// shared-cache totals).
  struct Stats {
    std::size_t submitted = 0;
    std::size_t completed = 0;  ///< ok + timeout + cancelled + error
    std::size_t ok = 0;
    std::size_t timeout = 0;
    std::size_t cancelled = 0;
    std::size_t error = 0;
    std::size_t rejected = 0;
    double busySeconds = 0.0;  ///< summed per-request run time
    engine::StageCache::Counters cache;  ///< zeros when caching is off
  };
  Stats stats() const;
  /// One-line JSON of stats() plus the pool/worker shape and queue/run
  /// latency percentiles — the SERVE_STATS payload of tools/hsd_serve and
  /// bench/serve_throughput.
  std::string statsJson() const;

  std::shared_ptr<engine::StageCache> cache() const { return cache_; }
  const ServerConfig& config() const { return cfg_; }

  /// The built-in SLO tracker (always present): availability = ok over
  /// finished evaluations, latency = the run histogram against
  /// ServerConfig::slo. Share with AdminServer::setSlo for /sloz.
  std::shared_ptr<obs::SloTracker> slo() const { return slo_; }

  /// The server's metric registry (always present, updated live):
  /// hsd_serve_queue_depth / hsd_serve_inflight_requests gauges,
  /// hsd_serve_requests_submitted_total and per-status
  /// hsd_serve_requests_total counters, hsd_serve_queue_seconds /
  /// hsd_serve_run_seconds histograms, shared-cache hit/miss counters.
  std::shared_ptr<obs::MetricsRegistry> metrics() const { return metrics_; }
  /// Prometheus text exposition of metrics() — the on-demand scrape
  /// surface; tools/hsd_serve dumps it to --metrics-out at exit.
  std::string renderPrometheus() const { return metrics_->renderPrometheus(); }
  /// Live latency histograms (for percentile reporting in benches).
  const obs::Histogram& queueLatency() const { return *queueHist_; }
  const obs::Histogram& runLatency() const { return *runHist_; }

 private:
  struct Request {
    const core::Detector* det = nullptr;
    const Layout* layout = nullptr;
    core::EvalParams params;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::chrono::steady_clock::time_point submitted;
    std::uint64_t id = 0;  ///< 1-based submission index (trace span arg)
    obs::TraceId trace;    ///< wire correlation id ({0,0} = none)
    Callback callback;
    std::shared_ptr<CancelSource> cancel;  ///< optional external cancel
    std::promise<ServeResult> promise;
  };

  void workerLoop(std::size_t workerIndex);
  ServeResult process(Request& req);
  /// Tiled request path: prepare the plan on `primary`, fan tiles across
  /// borrowed pool contexts, merge deterministically, run removal
  /// globally. Helper stats fold back into `primary` so the per-request
  /// statsJson covers every tile.
  core::EvalResult runTiled(Request& req, engine::RunContext& primary);
  void finish(Request& req, ServeResult res);
  void registerMetrics();

  ServerConfig cfg_;
  std::shared_ptr<engine::StageCache> cache_;
  std::unique_ptr<ContextPool> pool_;
  std::shared_ptr<obs::SloTracker> slo_;

  // Registered once in the constructor; the pointees live in metrics_ and
  // are updated lock-free on the request path.
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::Gauge* queueDepth_ = nullptr;
  obs::Gauge* inflight_ = nullptr;
  obs::Counter* submittedTotal_ = nullptr;
  obs::Counter* statusTotal_[5] = {};  ///< indexed by RequestStatus
  obs::Histogram* queueHist_ = nullptr;
  obs::Histogram* runHist_ = nullptr;
  obs::Counter* cacheHits_ = nullptr;
  obs::Counter* cacheMisses_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool accepting_ = true;
  bool stopping_ = false;
  Stats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace hsd::serve
