// OpenHSD umbrella header: the full public API.
//
//   #include "hsd.hpp"
//
// pulls in the geometry substrate, layout database, GDSII / text I/O, the
// lithography oracle + OPC, DRC, the SVM engine, the staged execution
// engine (RunContext + pipeline), and the hotspot-detection framework
// (training, evaluation, scoring, extensions) plus the synthetic
// benchmark generator.
#pragma once

#include "core/classify.hpp"
#include "core/dpt.hpp"
#include "core/evaluator.hpp"
#include "core/extract.hpp"
#include "core/features.hpp"
#include "core/fuzzy_match.hpp"
#include "core/metrics.hpp"
#include "core/mtcg.hpp"
#include "core/multilayer.hpp"
#include "core/pattern.hpp"
#include "core/removal.hpp"
#include "core/topo_string.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "data/motifs.hpp"
#include "drc/drc.hpp"
#include "engine/pipeline.hpp"
#include "engine/run_context.hpp"
#include "engine/stats.hpp"
#include "gds/ascii.hpp"
#include "gds/gdsii.hpp"
#include "geom/geom.hpp"
#include "layout/clip.hpp"
#include "layout/layout.hpp"
#include "layout/spatial_index.hpp"
#include "litho/litho.hpp"
#include "litho/opc.hpp"
#include "par/thread_pool.hpp"
#include "svm/dataset.hpp"
#include "svm/model_selection.hpp"
#include "svm/platt.hpp"
#include "svm/scaler.hpp"
#include "svm/svm.hpp"
