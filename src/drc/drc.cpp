#include "drc/drc.hpp"

#include <algorithm>
#include <numeric>

#include "geom/interval.hpp"
#include "geom/rectset.hpp"
#include "layout/spatial_index.hpp"

namespace hsd::drc {

const char* toString(ViolationKind k) {
  switch (k) {
    case ViolationKind::kWidth: return "width";
    case ViolationKind::kSpace: return "space";
    case ViolationKind::kArea:  return "area";
  }
  return "?";
}

namespace {

std::vector<Coord> cutCoords(const std::vector<Rect>& rects, bool yAxis) {
  std::vector<Coord> cs;
  cs.reserve(rects.size() * 2);
  for (const Rect& r : rects) {
    cs.push_back(yAxis ? r.lo.y : r.lo.x);
    cs.push_back(yAxis ? r.hi.y : r.hi.x);
  }
  std::sort(cs.begin(), cs.end());
  cs.erase(std::unique(cs.begin(), cs.end()), cs.end());
  return cs;
}

// Merge vertically (or horizontally) adjacent violation boxes with the
// same cross-interval so one skinny feature reports once, not per band.
void mergeBoxes(std::vector<Violation>& v, bool mergeAlongY) {
  std::sort(v.begin(), v.end(), [mergeAlongY](const Violation& a,
                                              const Violation& b) {
    if (mergeAlongY) {
      if (a.where.lo.x != b.where.lo.x) return a.where.lo.x < b.where.lo.x;
      if (a.where.hi.x != b.where.hi.x) return a.where.hi.x < b.where.hi.x;
      return a.where.lo.y < b.where.lo.y;
    }
    if (a.where.lo.y != b.where.lo.y) return a.where.lo.y < b.where.lo.y;
    if (a.where.hi.y != b.where.hi.y) return a.where.hi.y < b.where.hi.y;
    return a.where.lo.x < b.where.lo.x;
  });
  std::vector<Violation> out;
  for (const Violation& cur : v) {
    if (!out.empty()) {
      Violation& p = out.back();
      const bool sameCross =
          mergeAlongY ? (p.where.lo.x == cur.where.lo.x &&
                         p.where.hi.x == cur.where.hi.x)
                      : (p.where.lo.y == cur.where.lo.y &&
                         p.where.hi.y == cur.where.hi.y);
      const bool contiguous = mergeAlongY
                                  ? p.where.hi.y == cur.where.lo.y
                                  : p.where.hi.x == cur.where.lo.x;
      if (sameCross && contiguous && p.kind == cur.kind) {
        if (mergeAlongY)
          p.where.hi.y = cur.where.hi.y;
        else
          p.where.hi.x = cur.where.hi.x;
        p.value = std::min(p.value, cur.value);
        continue;
      }
    }
    out.push_back(cur);
  }
  v = std::move(out);
}

// Width and space along one axis. With horizontal==true, bands are cut at
// every edge y and widths/gaps are measured in x.
void checkAxis(const std::vector<Rect>& rects, const DrcRules& rules,
               bool horizontal, std::vector<Violation>& out) {
  const std::vector<Coord> cuts = cutCoords(rects, /*yAxis=*/horizontal);
  std::vector<Violation> widths, spaces;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const Coord c1 = cuts[i];
    const Coord c2 = cuts[i + 1];
    if (c1 >= c2) continue;
    const std::vector<Interval> cov = horizontal
                                          ? coveredX(rects, c1, c2)
                                          : coveredY(rects, c1, c2);
    for (const Interval& iv : cov) {
      if (iv.length() < rules.minWidth) {
        Violation v;
        v.kind = ViolationKind::kWidth;
        v.where = horizontal ? Rect{iv.lo, c1, iv.hi, c2}
                             : Rect{c1, iv.lo, c2, iv.hi};
        v.value = iv.length();
        v.limit = rules.minWidth;
        widths.push_back(v);
      }
    }
    for (std::size_t k = 0; k + 1 < cov.size(); ++k) {
      const Coord gap = cov[k + 1].lo - cov[k].hi;
      if (gap > 0 && gap < rules.minSpace) {
        Violation v;
        v.kind = ViolationKind::kSpace;
        v.where = horizontal ? Rect{cov[k].hi, c1, cov[k + 1].lo, c2}
                             : Rect{c1, cov[k].hi, c2, cov[k + 1].lo};
        v.value = gap;
        v.limit = rules.minSpace;
        spaces.push_back(v);
      }
    }
  }
  mergeBoxes(widths, /*mergeAlongY=*/horizontal);
  mergeBoxes(spaces, /*mergeAlongY=*/horizontal);
  out.insert(out.end(), widths.begin(), widths.end());
  out.insert(out.end(), spaces.begin(), spaces.end());
}

// True when the rects share an edge of positive length (or overlap);
// corner-only contact does not connect.
bool edgeConnected(const Rect& a, const Rect& b) {
  if (a.overlaps(b)) return true;
  if ((a.hi.x == b.lo.x || b.hi.x == a.lo.x) && a.lo.y < b.hi.y &&
      b.lo.y < a.hi.y)
    return true;
  if ((a.hi.y == b.lo.y || b.hi.y == a.lo.y) && a.lo.x < b.hi.x &&
      b.lo.x < a.hi.x)
    return true;
  return false;
}

}  // namespace

std::vector<std::vector<std::size_t>> connectedShapes(
    const std::vector<Rect>& rects) {
  std::vector<std::size_t> parent(rects.size());
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&parent](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };

  Coord bin = 1000;
  if (!rects.empty()) {
    Coord sum = 0;
    for (const Rect& r : rects) sum += std::max(r.width(), r.height());
    bin = std::max<Coord>(64, 2 * sum / Coord(rects.size()));
  }
  const GridIndex idx(rects, bin);
  for (std::size_t i = 0; i < rects.size(); ++i) {
    // Inflated query so edge-abutting neighbors (not strict overlaps)
    // are also visited.
    for (const std::size_t j : idx.query(rects[i].inflated(1))) {
      if (j <= i) continue;
      if (edgeConnected(rects[i], rects[j])) parent[find(i)] = find(j);
    }
  }

  std::vector<std::vector<std::size_t>> shapes;
  std::vector<std::int64_t> rootTo(rects.size(), -1);
  for (std::size_t i = 0; i < rects.size(); ++i) {
    const std::size_t r = find(i);
    if (rootTo[r] < 0) {
      rootTo[r] = std::int64_t(shapes.size());
      shapes.emplace_back();
    }
    shapes[std::size_t(rootTo[r])].push_back(i);
  }
  return shapes;
}

std::vector<Violation> checkRects(const std::vector<Rect>& rects,
                                  const DrcRules& rules,
                                  std::size_t maxViolations) {
  std::vector<Violation> out;
  checkAxis(rects, rules, /*horizontal=*/true, out);
  checkAxis(rects, rules, /*horizontal=*/false, out);

  if (rules.minArea > 0) {
    for (const auto& shape : connectedShapes(rects)) {
      std::vector<Rect> members;
      members.reserve(shape.size());
      for (const std::size_t i : shape) members.push_back(rects[i]);
      const Area area = unionArea(members);
      if (area < rules.minArea) {
        Violation v;
        v.kind = ViolationKind::kArea;
        v.where = *boundingBox(members.begin(), members.end());
        v.value = area;
        v.limit = rules.minArea;
        out.push_back(v);
      }
    }
  }

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (maxViolations > 0 && out.size() > maxViolations)
    out.resize(maxViolations);
  return out;
}

std::vector<Violation> checkLayout(const Layout& layout, LayerId layer,
                                   const DrcRules& rules,
                                   std::size_t maxViolations) {
  const Layer* l = layout.findLayer(layer);
  if (l == nullptr) return {};
  return checkRects(l->rects(), rules, maxViolations);
}

}  // namespace hsd::drc
