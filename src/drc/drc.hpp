// Geometric design-rule checking. The paper's motivation (Sec. I) is that
// "design rule checking ... can alleviate the printability problem, [but]
// many regions on a layout may still be susceptible" — this module
// provides that DRC step so examples and benches can demonstrate
// DRC-clean-yet-unprintable hotspots, and so the synthetic generator's
// background fabric can be validated rule-clean.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geom/rect.hpp"
#include "layout/layout.hpp"

namespace hsd::drc {

struct DrcRules {
  Coord minWidth = 100;   ///< minimum drawn feature width
  Coord minSpace = 100;   ///< minimum edge-to-edge spacing
  Area minArea = 0;       ///< minimum connected-shape area (0 = off)
};

enum class ViolationKind : std::uint8_t {
  kWidth = 0,
  kSpace,
  kArea,
};

const char* toString(ViolationKind k);

struct Violation {
  ViolationKind kind = ViolationKind::kWidth;
  Rect where;      ///< offending geometry (feature slab / gap box / shape bbox)
  Coord value = 0; ///< measured width / space / sqrt(area)
  Coord limit = 0; ///< the rule it violates

  friend constexpr auto operator<=>(const Violation&,
                                    const Violation&) = default;
};

/// Check a rect set (a clip or a whole layer's decomposition). Violations
/// are deduplicated and sorted. `maxViolations` caps the report (0 = no
/// cap).
std::vector<Violation> checkRects(const std::vector<Rect>& rects,
                                  const DrcRules& rules,
                                  std::size_t maxViolations = 0);

/// Check one layer of a layout.
std::vector<Violation> checkLayout(const Layout& layout, LayerId layer,
                                   const DrcRules& rules,
                                   std::size_t maxViolations = 0);

/// Group touching/overlapping rects into connected shapes; returns one
/// index list per shape (used by the area rule and generally useful).
std::vector<std::vector<std::size_t>> connectedShapes(
    const std::vector<Rect>& rects);

}  // namespace hsd::drc
