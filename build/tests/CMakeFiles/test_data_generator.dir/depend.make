# Empty dependencies file for test_data_generator.
# This may be replaced when dependencies are built.
