file(REMOVE_RECURSE
  "CMakeFiles/test_data_generator.dir/test_data_generator.cpp.o"
  "CMakeFiles/test_data_generator.dir/test_data_generator.cpp.o.d"
  "test_data_generator"
  "test_data_generator.pdb"
  "test_data_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
