file(REMOVE_RECURSE
  "CMakeFiles/test_litho.dir/test_litho.cpp.o"
  "CMakeFiles/test_litho.dir/test_litho.cpp.o.d"
  "test_litho"
  "test_litho.pdb"
  "test_litho[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_litho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
