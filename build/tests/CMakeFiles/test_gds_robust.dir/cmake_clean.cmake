file(REMOVE_RECURSE
  "CMakeFiles/test_gds_robust.dir/test_gds_robust.cpp.o"
  "CMakeFiles/test_gds_robust.dir/test_gds_robust.cpp.o.d"
  "test_gds_robust"
  "test_gds_robust.pdb"
  "test_gds_robust[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gds_robust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
