file(REMOVE_RECURSE
  "CMakeFiles/test_topo_string.dir/test_topo_string.cpp.o"
  "CMakeFiles/test_topo_string.dir/test_topo_string.cpp.o.d"
  "test_topo_string"
  "test_topo_string.pdb"
  "test_topo_string[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topo_string.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
