# Empty dependencies file for test_topo_string.
# This may be replaced when dependencies are built.
