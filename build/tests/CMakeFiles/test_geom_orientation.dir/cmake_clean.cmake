file(REMOVE_RECURSE
  "CMakeFiles/test_geom_orientation.dir/test_geom_orientation.cpp.o"
  "CMakeFiles/test_geom_orientation.dir/test_geom_orientation.cpp.o.d"
  "test_geom_orientation"
  "test_geom_orientation.pdb"
  "test_geom_orientation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_orientation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
