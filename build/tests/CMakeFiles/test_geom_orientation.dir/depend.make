# Empty dependencies file for test_geom_orientation.
# This may be replaced when dependencies are built.
