file(REMOVE_RECURSE
  "CMakeFiles/test_geom_basic.dir/test_geom_basic.cpp.o"
  "CMakeFiles/test_geom_basic.dir/test_geom_basic.cpp.o.d"
  "test_geom_basic"
  "test_geom_basic.pdb"
  "test_geom_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
