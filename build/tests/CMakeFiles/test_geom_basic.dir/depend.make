# Empty dependencies file for test_geom_basic.
# This may be replaced when dependencies are built.
