file(REMOVE_RECURSE
  "CMakeFiles/test_multilayer.dir/test_multilayer.cpp.o"
  "CMakeFiles/test_multilayer.dir/test_multilayer.cpp.o.d"
  "test_multilayer"
  "test_multilayer.pdb"
  "test_multilayer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multilayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
