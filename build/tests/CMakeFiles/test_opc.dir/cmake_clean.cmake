file(REMOVE_RECURSE
  "CMakeFiles/test_opc.dir/test_opc.cpp.o"
  "CMakeFiles/test_opc.dir/test_opc.cpp.o.d"
  "test_opc"
  "test_opc.pdb"
  "test_opc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
