# Empty compiler generated dependencies file for test_geom_tiling.
# This may be replaced when dependencies are built.
