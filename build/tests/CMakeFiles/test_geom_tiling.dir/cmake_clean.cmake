file(REMOVE_RECURSE
  "CMakeFiles/test_geom_tiling.dir/test_geom_tiling.cpp.o"
  "CMakeFiles/test_geom_tiling.dir/test_geom_tiling.cpp.o.d"
  "test_geom_tiling"
  "test_geom_tiling.pdb"
  "test_geom_tiling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
