file(REMOVE_RECURSE
  "CMakeFiles/test_geom_polygon.dir/test_geom_polygon.cpp.o"
  "CMakeFiles/test_geom_polygon.dir/test_geom_polygon.cpp.o.d"
  "test_geom_polygon"
  "test_geom_polygon.pdb"
  "test_geom_polygon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_polygon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
