# Empty compiler generated dependencies file for test_geom_polygon.
# This may be replaced when dependencies are built.
