# Empty compiler generated dependencies file for test_geom_density.
# This may be replaced when dependencies are built.
