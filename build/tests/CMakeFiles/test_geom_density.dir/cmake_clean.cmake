file(REMOVE_RECURSE
  "CMakeFiles/test_geom_density.dir/test_geom_density.cpp.o"
  "CMakeFiles/test_geom_density.dir/test_geom_density.cpp.o.d"
  "test_geom_density"
  "test_geom_density.pdb"
  "test_geom_density[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
