# Empty dependencies file for test_svm_wss.
# This may be replaced when dependencies are built.
