file(REMOVE_RECURSE
  "CMakeFiles/test_svm_wss.dir/test_svm_wss.cpp.o"
  "CMakeFiles/test_svm_wss.dir/test_svm_wss.cpp.o.d"
  "test_svm_wss"
  "test_svm_wss.pdb"
  "test_svm_wss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svm_wss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
