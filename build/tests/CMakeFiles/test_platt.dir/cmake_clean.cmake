file(REMOVE_RECURSE
  "CMakeFiles/test_platt.dir/test_platt.cpp.o"
  "CMakeFiles/test_platt.dir/test_platt.cpp.o.d"
  "test_platt"
  "test_platt.pdb"
  "test_platt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
