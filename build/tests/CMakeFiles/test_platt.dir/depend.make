# Empty dependencies file for test_platt.
# This may be replaced when dependencies are built.
