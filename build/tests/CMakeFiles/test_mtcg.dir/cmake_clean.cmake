file(REMOVE_RECURSE
  "CMakeFiles/test_mtcg.dir/test_mtcg.cpp.o"
  "CMakeFiles/test_mtcg.dir/test_mtcg.cpp.o.d"
  "test_mtcg"
  "test_mtcg.pdb"
  "test_mtcg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mtcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
