# Empty compiler generated dependencies file for test_mtcg.
# This may be replaced when dependencies are built.
