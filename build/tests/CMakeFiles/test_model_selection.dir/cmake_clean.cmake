file(REMOVE_RECURSE
  "CMakeFiles/test_model_selection.dir/test_model_selection.cpp.o"
  "CMakeFiles/test_model_selection.dir/test_model_selection.cpp.o.d"
  "test_model_selection"
  "test_model_selection.pdb"
  "test_model_selection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
