file(REMOVE_RECURSE
  "CMakeFiles/test_geom_rectset.dir/test_geom_rectset.cpp.o"
  "CMakeFiles/test_geom_rectset.dir/test_geom_rectset.cpp.o.d"
  "test_geom_rectset"
  "test_geom_rectset.pdb"
  "test_geom_rectset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_rectset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
