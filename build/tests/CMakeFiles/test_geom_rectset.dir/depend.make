# Empty dependencies file for test_geom_rectset.
# This may be replaced when dependencies are built.
