file(REMOVE_RECURSE
  "CMakeFiles/test_multilayer_gen.dir/test_multilayer_gen.cpp.o"
  "CMakeFiles/test_multilayer_gen.dir/test_multilayer_gen.cpp.o.d"
  "test_multilayer_gen"
  "test_multilayer_gen.pdb"
  "test_multilayer_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multilayer_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
