# Empty dependencies file for test_multilayer_gen.
# This may be replaced when dependencies are built.
