file(REMOVE_RECURSE
  "CMakeFiles/hsd_train.dir/hsd_train.cpp.o"
  "CMakeFiles/hsd_train.dir/hsd_train.cpp.o.d"
  "hsd_train"
  "hsd_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
