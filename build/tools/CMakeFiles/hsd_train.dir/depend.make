# Empty dependencies file for hsd_train.
# This may be replaced when dependencies are built.
