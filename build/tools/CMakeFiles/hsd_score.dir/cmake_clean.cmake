file(REMOVE_RECURSE
  "CMakeFiles/hsd_score.dir/hsd_score.cpp.o"
  "CMakeFiles/hsd_score.dir/hsd_score.cpp.o.d"
  "hsd_score"
  "hsd_score.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_score.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
