# Empty compiler generated dependencies file for hsd_score.
# This may be replaced when dependencies are built.
