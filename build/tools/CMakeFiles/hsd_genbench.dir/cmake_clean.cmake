file(REMOVE_RECURSE
  "CMakeFiles/hsd_genbench.dir/hsd_genbench.cpp.o"
  "CMakeFiles/hsd_genbench.dir/hsd_genbench.cpp.o.d"
  "hsd_genbench"
  "hsd_genbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_genbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
