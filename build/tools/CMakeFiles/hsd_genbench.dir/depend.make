# Empty dependencies file for hsd_genbench.
# This may be replaced when dependencies are built.
