# Empty compiler generated dependencies file for hsd_fix.
# This may be replaced when dependencies are built.
