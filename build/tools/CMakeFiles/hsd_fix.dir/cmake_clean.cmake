file(REMOVE_RECURSE
  "CMakeFiles/hsd_fix.dir/hsd_fix.cpp.o"
  "CMakeFiles/hsd_fix.dir/hsd_fix.cpp.o.d"
  "hsd_fix"
  "hsd_fix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_fix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
