# Empty dependencies file for hsd_detect.
# This may be replaced when dependencies are built.
