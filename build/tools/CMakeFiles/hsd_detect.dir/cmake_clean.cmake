file(REMOVE_RECURSE
  "CMakeFiles/hsd_detect.dir/hsd_detect.cpp.o"
  "CMakeFiles/hsd_detect.dir/hsd_detect.cpp.o.d"
  "hsd_detect"
  "hsd_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
