file(REMOVE_RECURSE
  "CMakeFiles/hsd_litho.dir/litho.cpp.o"
  "CMakeFiles/hsd_litho.dir/litho.cpp.o.d"
  "CMakeFiles/hsd_litho.dir/opc.cpp.o"
  "CMakeFiles/hsd_litho.dir/opc.cpp.o.d"
  "libhsd_litho.a"
  "libhsd_litho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_litho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
