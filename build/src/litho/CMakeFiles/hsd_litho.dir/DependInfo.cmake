
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/litho/litho.cpp" "src/litho/CMakeFiles/hsd_litho.dir/litho.cpp.o" "gcc" "src/litho/CMakeFiles/hsd_litho.dir/litho.cpp.o.d"
  "/root/repo/src/litho/opc.cpp" "src/litho/CMakeFiles/hsd_litho.dir/opc.cpp.o" "gcc" "src/litho/CMakeFiles/hsd_litho.dir/opc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/hsd_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
