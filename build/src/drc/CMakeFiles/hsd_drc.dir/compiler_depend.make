# Empty compiler generated dependencies file for hsd_drc.
# This may be replaced when dependencies are built.
