file(REMOVE_RECURSE
  "libhsd_drc.a"
)
