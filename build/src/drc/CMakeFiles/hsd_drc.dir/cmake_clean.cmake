file(REMOVE_RECURSE
  "CMakeFiles/hsd_drc.dir/drc.cpp.o"
  "CMakeFiles/hsd_drc.dir/drc.cpp.o.d"
  "libhsd_drc.a"
  "libhsd_drc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_drc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
