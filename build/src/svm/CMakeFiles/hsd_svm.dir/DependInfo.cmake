
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svm/model_selection.cpp" "src/svm/CMakeFiles/hsd_svm.dir/model_selection.cpp.o" "gcc" "src/svm/CMakeFiles/hsd_svm.dir/model_selection.cpp.o.d"
  "/root/repo/src/svm/platt.cpp" "src/svm/CMakeFiles/hsd_svm.dir/platt.cpp.o" "gcc" "src/svm/CMakeFiles/hsd_svm.dir/platt.cpp.o.d"
  "/root/repo/src/svm/scaler.cpp" "src/svm/CMakeFiles/hsd_svm.dir/scaler.cpp.o" "gcc" "src/svm/CMakeFiles/hsd_svm.dir/scaler.cpp.o.d"
  "/root/repo/src/svm/svm.cpp" "src/svm/CMakeFiles/hsd_svm.dir/svm.cpp.o" "gcc" "src/svm/CMakeFiles/hsd_svm.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
