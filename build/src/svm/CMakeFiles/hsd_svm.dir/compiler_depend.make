# Empty compiler generated dependencies file for hsd_svm.
# This may be replaced when dependencies are built.
