file(REMOVE_RECURSE
  "CMakeFiles/hsd_svm.dir/model_selection.cpp.o"
  "CMakeFiles/hsd_svm.dir/model_selection.cpp.o.d"
  "CMakeFiles/hsd_svm.dir/platt.cpp.o"
  "CMakeFiles/hsd_svm.dir/platt.cpp.o.d"
  "CMakeFiles/hsd_svm.dir/scaler.cpp.o"
  "CMakeFiles/hsd_svm.dir/scaler.cpp.o.d"
  "CMakeFiles/hsd_svm.dir/svm.cpp.o"
  "CMakeFiles/hsd_svm.dir/svm.cpp.o.d"
  "libhsd_svm.a"
  "libhsd_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
