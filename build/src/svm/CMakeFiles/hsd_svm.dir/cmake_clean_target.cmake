file(REMOVE_RECURSE
  "libhsd_svm.a"
)
