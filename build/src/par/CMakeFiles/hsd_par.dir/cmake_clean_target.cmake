file(REMOVE_RECURSE
  "libhsd_par.a"
)
