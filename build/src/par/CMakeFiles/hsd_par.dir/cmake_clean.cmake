file(REMOVE_RECURSE
  "CMakeFiles/hsd_par.dir/thread_pool.cpp.o"
  "CMakeFiles/hsd_par.dir/thread_pool.cpp.o.d"
  "libhsd_par.a"
  "libhsd_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
