# Empty compiler generated dependencies file for hsd_par.
# This may be replaced when dependencies are built.
