
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/generator.cpp" "src/data/CMakeFiles/hsd_data.dir/generator.cpp.o" "gcc" "src/data/CMakeFiles/hsd_data.dir/generator.cpp.o.d"
  "/root/repo/src/data/motifs.cpp" "src/data/CMakeFiles/hsd_data.dir/motifs.cpp.o" "gcc" "src/data/CMakeFiles/hsd_data.dir/motifs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/hsd_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/hsd_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/gds/CMakeFiles/hsd_gds.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hsd_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
