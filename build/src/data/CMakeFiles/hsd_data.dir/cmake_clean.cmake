file(REMOVE_RECURSE
  "CMakeFiles/hsd_data.dir/generator.cpp.o"
  "CMakeFiles/hsd_data.dir/generator.cpp.o.d"
  "CMakeFiles/hsd_data.dir/motifs.cpp.o"
  "CMakeFiles/hsd_data.dir/motifs.cpp.o.d"
  "libhsd_data.a"
  "libhsd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
