# Empty dependencies file for hsd_geom.
# This may be replaced when dependencies are built.
