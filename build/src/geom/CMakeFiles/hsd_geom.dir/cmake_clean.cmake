file(REMOVE_RECURSE
  "CMakeFiles/hsd_geom.dir/density_grid.cpp.o"
  "CMakeFiles/hsd_geom.dir/density_grid.cpp.o.d"
  "CMakeFiles/hsd_geom.dir/polygon.cpp.o"
  "CMakeFiles/hsd_geom.dir/polygon.cpp.o.d"
  "CMakeFiles/hsd_geom.dir/rectset.cpp.o"
  "CMakeFiles/hsd_geom.dir/rectset.cpp.o.d"
  "CMakeFiles/hsd_geom.dir/tiling.cpp.o"
  "CMakeFiles/hsd_geom.dir/tiling.cpp.o.d"
  "libhsd_geom.a"
  "libhsd_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
