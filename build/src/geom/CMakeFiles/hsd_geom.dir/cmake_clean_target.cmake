file(REMOVE_RECURSE
  "libhsd_geom.a"
)
