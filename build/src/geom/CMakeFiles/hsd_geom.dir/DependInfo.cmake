
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/density_grid.cpp" "src/geom/CMakeFiles/hsd_geom.dir/density_grid.cpp.o" "gcc" "src/geom/CMakeFiles/hsd_geom.dir/density_grid.cpp.o.d"
  "/root/repo/src/geom/polygon.cpp" "src/geom/CMakeFiles/hsd_geom.dir/polygon.cpp.o" "gcc" "src/geom/CMakeFiles/hsd_geom.dir/polygon.cpp.o.d"
  "/root/repo/src/geom/rectset.cpp" "src/geom/CMakeFiles/hsd_geom.dir/rectset.cpp.o" "gcc" "src/geom/CMakeFiles/hsd_geom.dir/rectset.cpp.o.d"
  "/root/repo/src/geom/tiling.cpp" "src/geom/CMakeFiles/hsd_geom.dir/tiling.cpp.o" "gcc" "src/geom/CMakeFiles/hsd_geom.dir/tiling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
