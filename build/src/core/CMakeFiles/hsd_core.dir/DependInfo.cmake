
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classify.cpp" "src/core/CMakeFiles/hsd_core.dir/classify.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/classify.cpp.o.d"
  "/root/repo/src/core/dpt.cpp" "src/core/CMakeFiles/hsd_core.dir/dpt.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/dpt.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/core/CMakeFiles/hsd_core.dir/evaluator.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/core/extract.cpp" "src/core/CMakeFiles/hsd_core.dir/extract.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/extract.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/hsd_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/features.cpp.o.d"
  "/root/repo/src/core/fuzzy_match.cpp" "src/core/CMakeFiles/hsd_core.dir/fuzzy_match.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/fuzzy_match.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/hsd_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/mtcg.cpp" "src/core/CMakeFiles/hsd_core.dir/mtcg.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/mtcg.cpp.o.d"
  "/root/repo/src/core/multilayer.cpp" "src/core/CMakeFiles/hsd_core.dir/multilayer.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/multilayer.cpp.o.d"
  "/root/repo/src/core/pattern.cpp" "src/core/CMakeFiles/hsd_core.dir/pattern.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/pattern.cpp.o.d"
  "/root/repo/src/core/removal.cpp" "src/core/CMakeFiles/hsd_core.dir/removal.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/removal.cpp.o.d"
  "/root/repo/src/core/topo_string.cpp" "src/core/CMakeFiles/hsd_core.dir/topo_string.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/topo_string.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/hsd_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/hsd_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/hsd_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/svm/CMakeFiles/hsd_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/hsd_par.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
