file(REMOVE_RECURSE
  "CMakeFiles/hsd_core.dir/classify.cpp.o"
  "CMakeFiles/hsd_core.dir/classify.cpp.o.d"
  "CMakeFiles/hsd_core.dir/dpt.cpp.o"
  "CMakeFiles/hsd_core.dir/dpt.cpp.o.d"
  "CMakeFiles/hsd_core.dir/evaluator.cpp.o"
  "CMakeFiles/hsd_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/hsd_core.dir/extract.cpp.o"
  "CMakeFiles/hsd_core.dir/extract.cpp.o.d"
  "CMakeFiles/hsd_core.dir/features.cpp.o"
  "CMakeFiles/hsd_core.dir/features.cpp.o.d"
  "CMakeFiles/hsd_core.dir/fuzzy_match.cpp.o"
  "CMakeFiles/hsd_core.dir/fuzzy_match.cpp.o.d"
  "CMakeFiles/hsd_core.dir/metrics.cpp.o"
  "CMakeFiles/hsd_core.dir/metrics.cpp.o.d"
  "CMakeFiles/hsd_core.dir/mtcg.cpp.o"
  "CMakeFiles/hsd_core.dir/mtcg.cpp.o.d"
  "CMakeFiles/hsd_core.dir/multilayer.cpp.o"
  "CMakeFiles/hsd_core.dir/multilayer.cpp.o.d"
  "CMakeFiles/hsd_core.dir/pattern.cpp.o"
  "CMakeFiles/hsd_core.dir/pattern.cpp.o.d"
  "CMakeFiles/hsd_core.dir/removal.cpp.o"
  "CMakeFiles/hsd_core.dir/removal.cpp.o.d"
  "CMakeFiles/hsd_core.dir/topo_string.cpp.o"
  "CMakeFiles/hsd_core.dir/topo_string.cpp.o.d"
  "CMakeFiles/hsd_core.dir/trainer.cpp.o"
  "CMakeFiles/hsd_core.dir/trainer.cpp.o.d"
  "libhsd_core.a"
  "libhsd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
