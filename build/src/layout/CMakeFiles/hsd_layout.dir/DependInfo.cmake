
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/clip.cpp" "src/layout/CMakeFiles/hsd_layout.dir/clip.cpp.o" "gcc" "src/layout/CMakeFiles/hsd_layout.dir/clip.cpp.o.d"
  "/root/repo/src/layout/hierarchy.cpp" "src/layout/CMakeFiles/hsd_layout.dir/hierarchy.cpp.o" "gcc" "src/layout/CMakeFiles/hsd_layout.dir/hierarchy.cpp.o.d"
  "/root/repo/src/layout/layout.cpp" "src/layout/CMakeFiles/hsd_layout.dir/layout.cpp.o" "gcc" "src/layout/CMakeFiles/hsd_layout.dir/layout.cpp.o.d"
  "/root/repo/src/layout/spatial_index.cpp" "src/layout/CMakeFiles/hsd_layout.dir/spatial_index.cpp.o" "gcc" "src/layout/CMakeFiles/hsd_layout.dir/spatial_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/hsd_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
