file(REMOVE_RECURSE
  "CMakeFiles/hsd_layout.dir/clip.cpp.o"
  "CMakeFiles/hsd_layout.dir/clip.cpp.o.d"
  "CMakeFiles/hsd_layout.dir/hierarchy.cpp.o"
  "CMakeFiles/hsd_layout.dir/hierarchy.cpp.o.d"
  "CMakeFiles/hsd_layout.dir/layout.cpp.o"
  "CMakeFiles/hsd_layout.dir/layout.cpp.o.d"
  "CMakeFiles/hsd_layout.dir/spatial_index.cpp.o"
  "CMakeFiles/hsd_layout.dir/spatial_index.cpp.o.d"
  "libhsd_layout.a"
  "libhsd_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
