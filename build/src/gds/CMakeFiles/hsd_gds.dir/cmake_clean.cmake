file(REMOVE_RECURSE
  "CMakeFiles/hsd_gds.dir/ascii.cpp.o"
  "CMakeFiles/hsd_gds.dir/ascii.cpp.o.d"
  "CMakeFiles/hsd_gds.dir/gdsii.cpp.o"
  "CMakeFiles/hsd_gds.dir/gdsii.cpp.o.d"
  "libhsd_gds.a"
  "libhsd_gds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_gds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
