file(REMOVE_RECURSE
  "libhsd_gds.a"
)
