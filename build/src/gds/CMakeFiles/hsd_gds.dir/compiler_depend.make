# Empty compiler generated dependencies file for hsd_gds.
# This may be replaced when dependencies are built.
