file(REMOVE_RECURSE
  "CMakeFiles/ablation_multilayer.dir/ablation_multilayer.cpp.o"
  "CMakeFiles/ablation_multilayer.dir/ablation_multilayer.cpp.o.d"
  "ablation_multilayer"
  "ablation_multilayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multilayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
