
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_multilayer.cpp" "bench/CMakeFiles/ablation_multilayer.dir/ablation_multilayer.cpp.o" "gcc" "bench/CMakeFiles/ablation_multilayer.dir/ablation_multilayer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hsd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hsd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/hsd_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/gds/CMakeFiles/hsd_gds.dir/DependInfo.cmake"
  "/root/repo/build/src/svm/CMakeFiles/hsd_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/hsd_par.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/hsd_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hsd_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
