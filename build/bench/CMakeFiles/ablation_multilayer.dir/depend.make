# Empty dependencies file for ablation_multilayer.
# This may be replaced when dependencies are built.
