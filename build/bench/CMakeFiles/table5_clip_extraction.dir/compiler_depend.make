# Empty compiler generated dependencies file for table5_clip_extraction.
# This may be replaced when dependencies are built.
