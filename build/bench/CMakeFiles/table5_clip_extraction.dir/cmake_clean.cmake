file(REMOVE_RECURSE
  "CMakeFiles/table5_clip_extraction.dir/table5_clip_extraction.cpp.o"
  "CMakeFiles/table5_clip_extraction.dir/table5_clip_extraction.cpp.o.d"
  "table5_clip_extraction"
  "table5_clip_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_clip_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
