file(REMOVE_RECURSE
  "CMakeFiles/fig15_tradeoff.dir/fig15_tradeoff.cpp.o"
  "CMakeFiles/fig15_tradeoff.dir/fig15_tradeoff.cpp.o.d"
  "fig15_tradeoff"
  "fig15_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
