# Empty compiler generated dependencies file for drc_vs_ml.
# This may be replaced when dependencies are built.
