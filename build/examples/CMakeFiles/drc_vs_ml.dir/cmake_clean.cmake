file(REMOVE_RECURSE
  "CMakeFiles/drc_vs_ml.dir/drc_vs_ml.cpp.o"
  "CMakeFiles/drc_vs_ml.dir/drc_vs_ml.cpp.o.d"
  "drc_vs_ml"
  "drc_vs_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drc_vs_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
