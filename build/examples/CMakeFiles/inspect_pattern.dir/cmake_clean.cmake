file(REMOVE_RECURSE
  "CMakeFiles/inspect_pattern.dir/inspect_pattern.cpp.o"
  "CMakeFiles/inspect_pattern.dir/inspect_pattern.cpp.o.d"
  "inspect_pattern"
  "inspect_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
