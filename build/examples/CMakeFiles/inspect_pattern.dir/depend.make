# Empty dependencies file for inspect_pattern.
# This may be replaced when dependencies are built.
