# Empty dependencies file for multilayer_detect.
# This may be replaced when dependencies are built.
