file(REMOVE_RECURSE
  "CMakeFiles/multilayer_detect.dir/multilayer_detect.cpp.o"
  "CMakeFiles/multilayer_detect.dir/multilayer_detect.cpp.o.d"
  "multilayer_detect"
  "multilayer_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilayer_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
