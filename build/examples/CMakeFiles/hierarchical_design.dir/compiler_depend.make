# Empty compiler generated dependencies file for hierarchical_design.
# This may be replaced when dependencies are built.
