file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_design.dir/hierarchical_design.cpp.o"
  "CMakeFiles/hierarchical_design.dir/hierarchical_design.cpp.o.d"
  "hierarchical_design"
  "hierarchical_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
