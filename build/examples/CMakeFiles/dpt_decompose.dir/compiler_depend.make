# Empty compiler generated dependencies file for dpt_decompose.
# This may be replaced when dependencies are built.
