file(REMOVE_RECURSE
  "CMakeFiles/dpt_decompose.dir/dpt_decompose.cpp.o"
  "CMakeFiles/dpt_decompose.dir/dpt_decompose.cpp.o.d"
  "dpt_decompose"
  "dpt_decompose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpt_decompose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
