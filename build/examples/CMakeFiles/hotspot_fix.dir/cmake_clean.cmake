file(REMOVE_RECURSE
  "CMakeFiles/hotspot_fix.dir/hotspot_fix.cpp.o"
  "CMakeFiles/hotspot_fix.dir/hotspot_fix.cpp.o.d"
  "hotspot_fix"
  "hotspot_fix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_fix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
