# Empty compiler generated dependencies file for hotspot_fix.
# This may be replaced when dependencies are built.
