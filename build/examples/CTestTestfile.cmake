# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;hsd_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_full_flow "/root/repo/build/examples/full_flow")
set_tests_properties(example_full_flow PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;hsd_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multilayer_detect "/root/repo/build/examples/multilayer_detect")
set_tests_properties(example_multilayer_detect PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;hsd_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dpt_decompose "/root/repo/build/examples/dpt_decompose")
set_tests_properties(example_dpt_decompose PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;15;hsd_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inspect_pattern "/root/repo/build/examples/inspect_pattern")
set_tests_properties(example_inspect_pattern PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;16;hsd_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hotspot_fix "/root/repo/build/examples/hotspot_fix")
set_tests_properties(example_hotspot_fix PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;17;hsd_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_drc_vs_ml "/root/repo/build/examples/drc_vs_ml")
set_tests_properties(example_drc_vs_ml PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;18;hsd_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hierarchical_design "/root/repo/build/examples/hierarchical_design")
set_tests_properties(example_hierarchical_design PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;19;hsd_example;/root/repo/examples/CMakeLists.txt;0;")
